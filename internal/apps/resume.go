package apps

import (
	"proxygraph/internal/cluster"
	"proxygraph/internal/engine"
	"proxygraph/internal/graph"
)

// This file implements delta-based re-execution: after a graph.Delta evolves
// a base graph, re-analysis starts from the previous run's converged output
// instead of cold state, so the work scales with how much the batch disturbed
// the solution rather than with the graph. PageRank resumes from the prior
// rank vector (ApplyAll programs re-gather everything but converge in the few
// supersteps the perturbation needs); connected components resumes from the
// prior labelling with only the disturbed region active, via the engines'
// warm-start frontier (engine.Options.InitialActive).

// PageRankResume is PageRank warm-started from a prior rank vector. Vertices
// beyond the prior vector (an ID space grown by the delta) start cold at rank
// 1. Convergence is tolerance-stopped, so resumed ranks are not bit-identical
// to a cold run on the evolved graph; both land within the same fixed-point
// envelope — each vertex's converged rank is within Tolerance/(1-Damping) of
// the true fixed point, so resumed and cold ranks agree per vertex to within
// twice that (the differential tests pin this bound).
type PageRankResume struct {
	PageRank
	// Prior is the base-graph run's rank vector (Result.Output).
	Prior []float64
}

// Resume returns pr warm-started from the prior rank vector.
func (pr *PageRank) Resume(prior []float64) *PageRankResume {
	return &PageRankResume{PageRank: *pr, Prior: prior}
}

// Name implements App.
func (r *PageRankResume) Name() string { return "pagerank_resume" }

// Init implements engine.Program: the prior rank where one exists, cold rank
// 1 otherwise; invOut always reflects the evolved graph's out-degrees.
func (r *PageRankResume) Init(v graph.VertexID, outDeg, inDeg int32) prState {
	s := prState{rank: 1}
	if int(v) < len(r.Prior) {
		s.rank = r.Prior[v]
	}
	if outDeg > 0 {
		s.invOut = 1 / float64(outDeg)
	}
	return s
}

// Run implements App. The Output is the []float64 rank vector.
func (r *PageRankResume) Run(pl *engine.Placement, cl *cluster.Cluster) (*engine.Result, error) {
	return r.RunOpts(pl, cl, engine.Options{})
}

// RunOpts is Run with engine options attached.
func (r *PageRankResume) RunOpts(pl *engine.Placement, cl *cluster.Cluster, opts engine.Options) (*engine.Result, error) {
	res, vals, err := engine.RunSyncOpts[prState, float64](r, pl, cl, opts)
	if err != nil {
		return nil, err
	}
	ranks := make([]float64, len(vals))
	for i, s := range vals {
		ranks[i] = s.rank
	}
	res.Output = ranks
	return res, nil
}

// RunParallel is Run on the destination-sharded parallel engine.
func (r *PageRankResume) RunParallel(pl *engine.Placement, cl *cluster.Cluster) (*engine.Result, error) {
	res, vals, err := engine.RunSyncParallel[prState, float64](r, pl, cl)
	if err != nil {
		return nil, err
	}
	ranks := make([]float64, len(vals))
	for i, s := range vals {
		ranks[i] = s.rank
	}
	res.Output = ranks
	return res, nil
}

// ConnectedComponentsResume is label propagation warm-started from a prior
// labelling. Deletions can split components, leaving prior labels too small
// for the evolved structure, so every vertex of a prior component incident to
// a deletion restarts at its own ID; everything else keeps its prior label.
// The seed frontier is exactly the reset vertices plus the insertion
// endpoints — every edge whose endpoint labels can initially disagree has a
// seeded endpoint, which is what label propagation needs to reach the new
// fixed point. Labels are exact integers with a unique fixed point, so the
// converged labelling is bit-identical to a cold run on the evolved graph;
// only the superstep count differs.
type ConnectedComponentsResume struct {
	ConnectedComponents
	// Prior is the base-graph labelling (Components.Labels).
	Prior []uint32
	reset []bool
	seed  []graph.VertexID
}

// Resume returns cc warm-started from the prior labelling for the evolved
// graph d produced. Vertices beyond the prior labelling start at their own ID
// like a cold run.
func (cc *ConnectedComponents) Resume(prior []uint32, d *graph.Delta, evolved *graph.Graph) *ConnectedComponentsResume {
	r := &ConnectedComponentsResume{ConnectedComponents: *cc, Prior: prior}
	n := evolved.NumVertices

	// Labels of prior components that a deletion touches: all their members
	// reset and reseed, since a split strands too-small labels anywhere in
	// the component.
	resetLabels := map[uint32]bool{}
	for _, e := range d.Deletes {
		if int(e.Src) < len(prior) {
			resetLabels[prior[e.Src]] = true
		}
		if int(e.Dst) < len(prior) {
			resetLabels[prior[e.Dst]] = true
		}
	}

	r.reset = make([]bool, n)
	seeded := make([]bool, n)
	for v := 0; v < n && v < len(prior); v++ {
		if resetLabels[prior[v]] {
			r.reset[v] = true
			seeded[v] = true
			r.seed = append(r.seed, graph.VertexID(v))
		}
	}
	for _, e := range d.Inserts {
		for _, v := range [2]graph.VertexID{e.Src, e.Dst} {
			if int(v) < n && !seeded[v] {
				seeded[v] = true
				r.seed = append(r.seed, v)
			}
		}
	}
	return r
}

// Name implements App.
func (r *ConnectedComponentsResume) Name() string { return "connected_components_resume" }

// Init implements engine.Program.
func (r *ConnectedComponentsResume) Init(v graph.VertexID, outDeg, inDeg int32) uint32 {
	if int(v) < len(r.Prior) && !r.reset[v] {
		return r.Prior[v]
	}
	return uint32(v)
}

// Seed returns the warm-start frontier (for callers composing their own
// engine.Options).
func (r *ConnectedComponentsResume) Seed() []graph.VertexID {
	if r.seed == nil {
		return []graph.VertexID{}
	}
	return r.seed
}

// Run implements App. The Output is a Components summary.
func (r *ConnectedComponentsResume) Run(pl *engine.Placement, cl *cluster.Cluster) (*engine.Result, error) {
	return r.RunOpts(pl, cl, engine.Options{})
}

// RunOpts is Run with engine options attached. The warm-start seed is
// installed unless opts already carries one.
func (r *ConnectedComponentsResume) RunOpts(pl *engine.Placement, cl *cluster.Cluster, opts engine.Options) (*engine.Result, error) {
	if opts.InitialActive == nil {
		opts.InitialActive = r.Seed()
	}
	res, labels, err := engine.RunSyncOpts[uint32, uint32](r, pl, cl, opts)
	if err != nil {
		return nil, err
	}
	res.Output = SummarizeComponents(labels)
	return res, nil
}

// RunParallel is Run on the destination-sharded parallel engine.
func (r *ConnectedComponentsResume) RunParallel(pl *engine.Placement, cl *cluster.Cluster) (*engine.Result, error) {
	res, labels, err := engine.RunSyncParallelOpts[uint32, uint32](r, pl, cl, engine.Options{InitialActive: r.Seed()})
	if err != nil {
		return nil, err
	}
	res.Output = SummarizeComponents(labels)
	return res, nil
}
