package apps

import (
	"testing"

	"proxygraph/internal/engine"
	"proxygraph/internal/graph"
)

// FuzzClusterBFS decodes arbitrary bytes into a small undirected graph plus a
// distinct source set, runs the packed traversal through the CSR engine, and
// checks every lane against the in-test queue-BFS oracle. The decoder skips
// self-loops (the graph validator rejects them) and never rejects an input —
// every byte string maps to some legal (graph, sources) pair, so the fuzzer's
// whole search space exercises the packed Apply/Gather path.
func FuzzClusterBFS(f *testing.F) {
	f.Add([]byte{8, 3, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5})
	f.Add([]byte{2, 1, 0, 1})
	f.Add([]byte{40, 9, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{5, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip("too short to decode a graph")
		}
		n := int(data[0])%40 + 2
		k := int(data[1])%n + 1
		if k > MaxBatchSources {
			k = MaxBatchSources
		}
		body := data[2:]

		// Sources: first k distinct vertices named by the bytes, topped up
		// deterministically from the low IDs when the bytes repeat themselves.
		used := make([]bool, n)
		srcs := make([]graph.VertexID, 0, k)
		for _, b := range body {
			if len(srcs) == k {
				break
			}
			if v := int(b) % n; !used[v] {
				used[v] = true
				srcs = append(srcs, graph.VertexID(v))
			}
		}
		for v := 0; len(srcs) < k; v++ {
			if !used[v] {
				used[v] = true
				srcs = append(srcs, graph.VertexID(v))
			}
		}

		// Edges: consecutive byte pairs, self-loops dropped.
		g := &graph.Graph{Name: "fuzz-clusterbfs", NumVertices: n}
		for i := 0; i+1 < len(body); i += 2 {
			u, v := int(body[i])%n, int(body[i+1])%n
			if u != v {
				g.Edges = append(g.Edges, E(u, v))
			}
		}

		owner := make([]int32, len(g.Edges))
		for i := range owner {
			owner[i] = int32(i % 2)
		}
		pl, err := engine.NewPlacement(g, owner, 2)
		if err != nil {
			t.Fatalf("placement: %v", err)
		}
		cl := multiCluster(t, 2)

		prog := &ClusterBFS{Sources: srcs, MaxIters: 200}
		_, states, err := engine.RunSync[ClusterState, uint64](prog, pl, cl)
		if err != nil {
			t.Fatalf("packed run: %v", err)
		}

		for j, s := range srcs {
			oracle := scalarBFSDistances(g, s)
			for v := range states {
				if got := states[v].Dist[j]; got != oracle[v] {
					t.Fatalf("lane %d (source %d) vertex %d: packed %d, oracle %d (n=%d, %d edges)",
						j, s, v, got, oracle[v], n, len(g.Edges))
				}
				if reached := states[v].Seen&(1<<uint(j)) != 0; reached != (oracle[v] >= 0) {
					t.Fatalf("lane %d vertex %d: reach bit %v, oracle distance %d", j, v, reached, oracle[v])
				}
			}
		}
	})
}
