package apps

import (
	"errors"
	"fmt"

	"proxygraph/internal/graph"
)

// Typed source-set errors shared by the BFS-family applications (BFS, SSSP,
// ClusterBFS and the workloads built on it). Callers branch with errors.Is;
// the wrapped message names the application and the offending vertex.
var (
	// ErrNoSources reports an empty source set where at least one root is
	// required.
	ErrNoSources = errors.New("apps: no sources given")
	// ErrSourceOutOfRange reports a source vertex outside [0, NumVertices).
	ErrSourceOutOfRange = errors.New("apps: source out of range")
	// ErrDuplicateSource reports the same vertex appearing twice in a source
	// set: each packed bit lane must trace a distinct root.
	ErrDuplicateSource = errors.New("apps: duplicate source")
	// ErrTooManySources reports a source set larger than the 64 bit lanes a
	// packed word carries.
	ErrTooManySources = errors.New("apps: too many sources")
)

// validateSource checks a single-root application's source against the graph,
// the guard BFS and SSSP run before touching the engine.
func validateSource(app string, numVertices int, source graph.VertexID) error {
	if int(source) >= numVertices {
		return fmt.Errorf("%s: %w: vertex %d in a graph with %d vertices", app, ErrSourceOutOfRange, source, numVertices)
	}
	return nil
}

// validateSources checks a batched source set: non-empty, at most max roots,
// every root in range, no root twice.
func validateSources(app string, numVertices int, sources []graph.VertexID, max int) error {
	if len(sources) == 0 {
		return fmt.Errorf("%s: %w", app, ErrNoSources)
	}
	if len(sources) > max {
		return fmt.Errorf("%s: %w: %d sources for %d lanes", app, ErrTooManySources, len(sources), max)
	}
	seen := make(map[graph.VertexID]int, len(sources))
	for i, s := range sources {
		if int(s) >= numVertices {
			return fmt.Errorf("%s: %w: source %d is vertex %d in a graph with %d vertices",
				app, ErrSourceOutOfRange, i, s, numVertices)
		}
		if j, dup := seen[s]; dup {
			return fmt.Errorf("%s: %w: vertex %d at indices %d and %d", app, ErrDuplicateSource, s, j, i)
		}
		seen[s] = i
	}
	return nil
}
