// Package fault provides deterministic, seed-driven fault schedules for the
// simulated cluster: permanent machine crashes at superstep barriers,
// transient stragglers (a machine's frequency and memory bandwidth throttled
// for a window of supersteps), and cluster-wide network degradation. A
// Schedule is a pure function of the superstep number, so every engine — and
// every replay after a checkpoint rollback — observes the identical fault
// sequence; *Schedule satisfies engine.FaultInjector.
//
// The paper evaluates static proxy-guided ingress against Mizan-style dynamic
// adaptation on a healthy cluster; this package supplies the degraded
// scenarios (Raval et al., PAPERS.md) under which that comparison shifts.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"proxygraph/internal/cluster"
	"proxygraph/internal/rng"
)

// Kind classifies a fault event.
type Kind int

const (
	// Crash permanently fails a machine at the barrier ending Step.
	Crash Kind = iota
	// Straggler throttles one machine's frequency and memory bandwidth by
	// Factor for supersteps [Step, Step+Duration).
	Straggler
	// Network scales the interconnect for supersteps [Step, Step+Duration):
	// bandwidth is multiplied by Factor, latency divided by it.
	Network
)

// String returns the event kind's name.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Straggler:
		return "straggler"
	case Network:
		return "network"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	Kind Kind
	// Step is the superstep the event fires at: a Crash takes effect at the
	// barrier ending Step; Straggler/Network windows cover [Step,
	// Step+Duration).
	Step int
	// Machine is the target machine index (ignored for Network events).
	Machine int
	// Duration is the window length in supersteps (ignored for Crash).
	Duration int
	// Factor is the degradation multiplier in (0, 1] (ignored for Crash).
	Factor float64
}

// Schedule is a deterministic fault schedule over a run. The zero value is an
// empty (fault-free) schedule.
type Schedule struct {
	Events []Event
}

// Validate checks the schedule against a cluster of m machines.
func (s *Schedule) Validate(m int) error {
	crashes := 0
	for i, e := range s.Events {
		switch e.Kind {
		case Crash:
			crashes++
			if e.Machine < 0 || e.Machine >= m {
				return fmt.Errorf("fault: event %d crashes machine %d outside [0, %d)", i, e.Machine, m)
			}
		case Straggler:
			if e.Machine < 0 || e.Machine >= m {
				return fmt.Errorf("fault: event %d throttles machine %d outside [0, %d)", i, e.Machine, m)
			}
			fallthrough
		case Network:
			if e.Duration < 1 {
				return fmt.Errorf("fault: event %d has duration %d, need >= 1", i, e.Duration)
			}
			if e.Factor <= 0 || e.Factor > 1 {
				return fmt.Errorf("fault: event %d has factor %g outside (0, 1]", i, e.Factor)
			}
		default:
			return fmt.Errorf("fault: event %d has unknown kind %d", i, int(e.Kind))
		}
		if e.Step < 0 {
			return fmt.Errorf("fault: event %d fires at negative step %d", i, e.Step)
		}
	}
	if crashes >= m {
		return fmt.Errorf("fault: %d crashes would kill all %d machines", crashes, m)
	}
	return nil
}

// Crash returns the machine that permanently fails at the barrier ending
// step, or -1 when none does (engine.FaultInjector).
func (s *Schedule) Crash(step int) int {
	for _, e := range s.Events {
		if e.Kind == Crash && e.Step == step {
			return e.Machine
		}
	}
	return -1
}

// Perturb returns the cluster superstep step runs on: cl itself when no
// transient fault covers the step, otherwise a degraded copy (engine's
// FaultInjector). Perturb is pure, so replayed supersteps after a rollback
// see the same conditions they saw the first time.
func (s *Schedule) Perturb(step int, cl *cluster.Cluster) *cluster.Cluster {
	covered := false
	for _, e := range s.Events {
		if e.Kind != Crash && step >= e.Step && step < e.Step+e.Duration {
			covered = true
			break
		}
	}
	if !covered {
		return cl
	}
	eff := &cluster.Cluster{
		Machines: append([]cluster.Machine(nil), cl.Machines...),
		Net:      cl.Net,
	}
	for _, e := range s.Events {
		if e.Kind == Crash || step < e.Step || step >= e.Step+e.Duration {
			continue
		}
		switch e.Kind {
		case Straggler:
			if e.Machine >= 0 && e.Machine < len(eff.Machines) {
				m := &eff.Machines[e.Machine]
				// Throttle clock and memory bandwidth together — the shape of
				// a thermally-limited or noisy-neighbour degradation — without
				// Machine.WithFrequency's superlinear uncore model, which
				// describes design-time frequency scaling, not a brownout.
				m.FreqGHz *= e.Factor
				m.MemBWGBs *= e.Factor
			}
		case Network:
			eff.Net.BandwidthGBs *= e.Factor
			eff.Net.LatencySec /= e.Factor
		}
	}
	return eff
}

// String renders the schedule compactly for logs and CLI output.
func (s *Schedule) String() string {
	if len(s.Events) == 0 {
		return "fault-free"
	}
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		switch e.Kind {
		case Crash:
			parts[i] = fmt.Sprintf("crash(m%d@%d)", e.Machine, e.Step)
		case Straggler:
			parts[i] = fmt.Sprintf("straggler(m%d@%d+%d x%.2f)", e.Machine, e.Step, e.Duration, e.Factor)
		case Network:
			parts[i] = fmt.Sprintf("network(@%d+%d x%.2f)", e.Step, e.Duration, e.Factor)
		}
	}
	return strings.Join(parts, " ")
}

// Spec parameterizes random schedule generation.
type Spec struct {
	// Machines is the cluster size events target.
	Machines int
	// Horizon bounds event start steps to [0, Horizon).
	Horizon int
	// Crashes, Stragglers and NetworkFaults count the events of each kind.
	// Crashes must leave at least one machine alive (Crashes < Machines) and
	// target distinct machines at distinct steps.
	Crashes, Stragglers, NetworkFaults int
	// MinFactor bounds transient degradation from below; factors are drawn
	// uniformly from [MinFactor, 1). Zero defaults to 0.25.
	MinFactor float64
	// MaxWindow bounds transient windows to [1, MaxWindow]. Zero defaults
	// to 4.
	MaxWindow int
}

// NewSchedule draws a deterministic schedule from seed: the same (seed, spec)
// pair always yields the same events, sorted by (Step, Kind, Machine).
func NewSchedule(seed uint64, spec Spec) (*Schedule, error) {
	if spec.Machines < 1 {
		return nil, fmt.Errorf("fault: spec needs at least one machine, got %d", spec.Machines)
	}
	if spec.Horizon < 1 {
		return nil, fmt.Errorf("fault: spec needs a positive horizon, got %d", spec.Horizon)
	}
	if spec.Crashes >= spec.Machines {
		return nil, fmt.Errorf("fault: %d crashes would kill all %d machines", spec.Crashes, spec.Machines)
	}
	if spec.Crashes > spec.Horizon {
		return nil, fmt.Errorf("fault: %d crashes do not fit in horizon %d at distinct steps", spec.Crashes, spec.Horizon)
	}
	if spec.Crashes < 0 || spec.Stragglers < 0 || spec.NetworkFaults < 0 {
		return nil, fmt.Errorf("fault: negative event counts")
	}
	minFactor := spec.MinFactor
	if minFactor == 0 {
		minFactor = 0.25
	}
	if minFactor < 0 || minFactor >= 1 {
		return nil, fmt.Errorf("fault: min factor %g outside (0, 1)", minFactor)
	}
	maxWindow := spec.MaxWindow
	if maxWindow == 0 {
		maxWindow = 4
	}
	if maxWindow < 1 {
		return nil, fmt.Errorf("fault: max window %d, need >= 1", maxWindow)
	}

	src := rng.New(seed)
	s := &Schedule{}
	// Crashes hit distinct machines at distinct steps, so no barrier has to
	// arbitrate simultaneous failures and no event is a dead-machine no-op.
	machines := src.Perm(spec.Machines)[:spec.Crashes]
	steps := map[int]bool{}
	for _, m := range machines {
		step := src.Intn(spec.Horizon)
		for steps[step] {
			step = (step + 1) % spec.Horizon
		}
		steps[step] = true
		s.Events = append(s.Events, Event{Kind: Crash, Step: step, Machine: m})
	}
	factor := func() float64 { return minFactor + (1-minFactor)*src.Float64() }
	for i := 0; i < spec.Stragglers; i++ {
		s.Events = append(s.Events, Event{
			Kind:     Straggler,
			Step:     src.Intn(spec.Horizon),
			Machine:  src.Intn(spec.Machines),
			Duration: 1 + src.Intn(maxWindow),
			Factor:   factor(),
		})
	}
	for i := 0; i < spec.NetworkFaults; i++ {
		s.Events = append(s.Events, Event{
			Kind:     Network,
			Step:     src.Intn(spec.Horizon),
			Duration: 1 + src.Intn(maxWindow),
			Factor:   factor(),
		})
	}
	sort.Slice(s.Events, func(a, b int) bool {
		ea, eb := s.Events[a], s.Events[b]
		if ea.Step != eb.Step {
			return ea.Step < eb.Step
		}
		if ea.Kind != eb.Kind {
			return ea.Kind < eb.Kind
		}
		return ea.Machine < eb.Machine
	})
	if err := s.Validate(spec.Machines); err != nil {
		return nil, err
	}
	return s, nil
}
