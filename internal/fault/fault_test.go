package fault_test

import (
	"strings"
	"testing"

	"proxygraph/internal/fault"
)

// TestFaultScheduleGenerator pins determinism and validation of the seeded
// generator.
func TestFaultScheduleGenerator(t *testing.T) {
	spec := fault.Spec{Machines: 4, Horizon: 10, Crashes: 2, Stragglers: 3, NetworkFaults: 2}
	a, err := fault.NewSchedule(42, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fault.NewSchedule(42, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("same seed, different event counts")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("same seed, different event %d: %+v != %+v", i, a.Events[i], b.Events[i])
		}
	}
	c, err := fault.NewSchedule(43, spec)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Events) == len(c.Events)
	if same {
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
	if err := a.Validate(4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.String(), "crash") {
		t.Fatalf("String() = %q", a.String())
	}

	// Crash machines are distinct and crash steps distinct.
	seenM, seenS := map[int]bool{}, map[int]bool{}
	for _, e := range a.Events {
		if e.Kind != fault.Crash {
			continue
		}
		if seenM[e.Machine] || seenS[e.Step] {
			t.Fatalf("duplicate crash machine/step: %+v", e)
		}
		seenM[e.Machine] = true
		seenS[e.Step] = true
	}

	// Invalid specs are rejected.
	for _, bad := range []fault.Spec{
		{Machines: 0, Horizon: 5},
		{Machines: 2, Horizon: 0},
		{Machines: 2, Horizon: 5, Crashes: 2},
		{Machines: 2, Horizon: 5, Crashes: -1},
		{Machines: 4, Horizon: 2, Crashes: 3},
		{Machines: 2, Horizon: 5, MinFactor: 1.5},
		{Machines: 2, Horizon: 5, MaxWindow: -1},
	} {
		if _, err := fault.NewSchedule(1, bad); err == nil {
			t.Errorf("spec %+v accepted", bad)
		}
	}
	var empty fault.Schedule
	if empty.String() != "fault-free" {
		t.Errorf("empty schedule renders %q", empty.String())
	}
	if empty.Crash(0) != -1 {
		t.Error("empty schedule crashes")
	}
}
