// Straggler: visualize why uniform partitioning fails on heterogeneous
// clusters — the effect the paper's Fig 1 motivates.
//
// The example runs PageRank three times on a big+little cluster (uniform,
// thread-count-estimated and proxy-guided partitions) and renders the
// superstep timeline of each: with uniform partitioning the little machine
// stars as the straggler of every barrier; thread-count estimation flips the
// straggler onto the overloaded big machine; proxy-guided CCR shares even
// the bars out.
//
// Run with: go run ./examples/straggler
package main

import (
	"fmt"
	"log"

	"proxygraph"
)

func main() {
	cl, err := proxygraph.NewCluster(
		proxygraph.LocalXeon("xeon-4c", 4, 2.5),
		proxygraph.LocalXeon("xeon-12c", 12, 2.5),
	)
	if err != nil {
		log.Fatal(err)
	}
	g, err := proxygraph.Generate(proxygraph.Spec{
		Name: "demo", Vertices: 40_000, Edges: 500_000,
		Kind: proxygraph.KindPowerLaw,
	}, 5)
	if err != nil {
		log.Fatal(err)
	}

	profiler, err := proxygraph.NewProxyProfiler(512, 1)
	if err != nil {
		log.Fatal(err)
	}
	pr := proxygraph.NewPageRank()
	pr.MaxIters = 6 // keep the timelines short

	systems := []struct {
		name string
		est  proxygraph.Estimator
	}{
		{"uniform default", proxygraph.UniformEstimator()},
		{"prior work (thread counts)", proxygraph.NewThreadCountEstimator()},
		{"proxy-guided (this paper)", profiler},
	}
	for _, sys := range systems {
		ccr, err := sys.est.Estimate(cl, pr)
		if err != nil {
			log.Fatal(err)
		}
		res, err := proxygraph.RunWithCCR(pr, g, cl, proxygraph.NewHybrid(), ccr, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", sys.name)
		fmt.Print(proxygraph.TraceGantt(res, 44))
		shares := proxygraph.StragglerShare(res)
		fmt.Printf("straggler shares: little %.0f%%, big %.0f%%; makespan %.4fs\n\n",
			shares[0]*100, shares[1]*100, res.SimSeconds)
	}
}
