// Amortization: the economics of one-time proxy profiling.
//
// The paper's Section III-B argues that CCR profiling is cheap because it is
// offline and reusable: "graph applications are often reused to analyze
// dozens of different real world graphs". This example simulates a session
// of thirty mixed jobs on a big+little cluster and prints the cumulative
// time under the uniform default versus the proxy-guided system — including
// the proxy system's upfront profiling cost — showing where the investment
// pays off.
//
// Run with: go run ./examples/amortization
package main

import (
	"fmt"
	"log"

	"proxygraph"
)

func main() {
	cl, err := proxygraph.NewCluster(
		proxygraph.LocalXeon("xeon-4c", 4, 2.5),
		proxygraph.LocalXeon("xeon-12c", 12, 2.5),
	)
	if err != nil {
		log.Fatal(err)
	}

	jobs, err := proxygraph.RandomJobs(30, 256, 11)
	if err != nil {
		log.Fatal(err)
	}
	session := &proxygraph.WorkloadSession{Cluster: cl}

	defaultRep, err := session.Run(jobs, proxygraph.UniformEstimator())
	if err != nil {
		log.Fatal(err)
	}
	// Profile with proxies a quarter of the production size: CCRs are
	// scale-invariant, so the offline cost shrinks without losing accuracy.
	profiler, err := proxygraph.NewProxyProfiler(1024, 11)
	if err != nil {
		log.Fatal(err)
	}
	proxyRep, err := session.Run(jobs, profiler)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("one-time profiling cost: %.4fs simulated\n\n", proxyRep.ProfilingSeconds)
	fmt.Println("jobs   default cumulative   proxy cumulative (incl. profiling)")
	for _, checkpoint := range []int{1, 3, 5, 10, 20, 30} {
		i := checkpoint - 1
		marker := ""
		if proxyRep.CumulativeSeconds[i] < defaultRep.CumulativeSeconds[i] {
			marker = "   <- proxy ahead"
		}
		fmt.Printf("%4d   %18.4fs   %15.4fs%s\n",
			checkpoint, defaultRep.CumulativeSeconds[i], proxyRep.CumulativeSeconds[i], marker)
	}
	cross := proxygraph.SessionCrossover(proxyRep, defaultRep)
	if cross > 0 {
		fmt.Printf("\nprofiling amortized after %d jobs; session totals: default %.4fs, proxy %.4fs (%.1f%% energy saved)\n",
			cross, defaultRep.Total(), proxyRep.Total(),
			(1-proxyRep.TotalEnergyJoules/defaultRep.TotalEnergyJoules)*100)
	} else {
		fmt.Println("\nprofiling did not amortize within this session")
	}
}
