// Heterocluster: the paper's Case 2 / Case 3 study on local servers.
//
// A big 12-core machine is paired with a little 4-core machine — first at
// the same frequency (Case 2), then with the little machine downclocked to
// 1.8GHz to emulate the tiny ARM-like servers appearing in data centers
// (Case 3). For every application the example compares three systems:
// the uniform default, the prior work's thread-count partitioning, and
// proxy-guided CCR partitioning, reporting runtime and energy.
//
// Run with: go run ./examples/heterocluster
package main

import (
	"fmt"
	"log"

	"proxygraph"
)

func main() {
	little := proxygraph.LocalXeon("xeon-4c", 4, 2.5)
	big := proxygraph.LocalXeon("xeon-12c", 12, 2.5)

	fmt.Println("=== Case 2: same frequency range (4 cores + 12 cores @ 2.5GHz) ===")
	study(little, big)

	fmt.Println("\n=== Case 3: little machine downclocked to 1.8GHz (tiny-server projection) ===")
	study(little.WithFrequency(1.8), big)
}

func study(littleM, bigM proxygraph.Machine) {
	cl, err := proxygraph.NewCluster(littleM, bigM)
	if err != nil {
		log.Fatal(err)
	}

	// The three systems under comparison.
	profiler, err := proxygraph.NewProxyProfiler(256, 1)
	if err != nil {
		log.Fatal(err)
	}
	systems := []struct {
		name string
		est  proxygraph.Estimator
	}{
		{"default", proxygraph.UniformEstimator()},
		{"prior-work", proxygraph.NewThreadCountEstimator()},
		{"proxy-guided", profiler},
	}

	// A social-network-like workload.
	g, err := proxygraph.Generate(proxygraph.Spec{
		Name: "social-demo", Vertices: 75_000, Edges: 1_000_000,
		Kind: proxygraph.KindSocial,
	}, 11)
	if err != nil {
		log.Fatal(err)
	}

	for _, app := range proxygraph.Apps() {
		var baseTime, baseEnergy float64
		fmt.Printf("%-22s", app.Name())
		for _, sys := range systems {
			pool, err := proxygraph.BuildPool(cl, proxygraph.Apps(), sys.est)
			if err != nil {
				log.Fatal(err)
			}
			res, err := proxygraph.RunPooled(app, g, cl, proxygraph.NewHybrid(), pool, 11)
			if err != nil {
				log.Fatal(err)
			}
			if sys.name == "default" {
				baseTime, baseEnergy = res.SimSeconds, res.EnergyJoules
				fmt.Printf("  %s: %7.4fs", sys.name, res.SimSeconds)
				continue
			}
			fmt.Printf("  %s: %.2fx/%.0f%% energy", sys.name,
				baseTime/res.SimSeconds, (1-res.EnergyJoules/baseEnergy)*100)
		}
		fmt.Println()
	}
}
