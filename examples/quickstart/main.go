// Quickstart: the paper's whole pipeline in one small program.
//
// It builds a two-machine heterogeneous cluster that prior work considers
// homogeneous (same thread counts, different categories), profiles it once
// with synthetic power-law proxy graphs, then runs PageRank on a generated
// graph with CCR-guided Hybrid partitioning and compares against the uniform
// default.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"proxygraph"
)

func main() {
	// The Case 1 cluster: both machines have 6 computing threads, so
	// hardware-configuration estimates see no heterogeneity at all.
	cl, err := proxygraph.NewCluster(
		proxygraph.MustMachine("m4.2xlarge"),
		proxygraph.MustMachine("c4.2xlarge"),
	)
	if err != nil {
		log.Fatal(err)
	}

	// One-time offline profiling: three synthetic power-law proxies
	// (alpha = 1.95 / 2.1 / 2.3) at 1/256 of their Table II size.
	fmt.Println("profiling the cluster with synthetic proxy graphs...")
	profiler, err := proxygraph.NewProxyProfiler(256, 1)
	if err != nil {
		log.Fatal(err)
	}
	pool, err := proxygraph.BuildPool(cl, proxygraph.Apps(), profiler)
	if err != nil {
		log.Fatal(err)
	}
	for _, app := range pool.Apps() {
		ccr, _ := pool.Get(app)
		fmt.Printf("  %-22s CCR: m4.2xlarge=%.2f c4.2xlarge=%.2f\n",
			app, ccr.Ratios["m4.2xlarge"], ccr.Ratios["c4.2xlarge"])
	}

	// An input graph: a power-law graph in the band natural graphs live in.
	g, err := proxygraph.Generate(proxygraph.Spec{
		Name: "demo", Vertices: 100_000, Edges: 1_200_000,
		Kind: proxygraph.KindPowerLaw,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninput graph: %d vertices, %d edges, alpha %.2f\n",
		g.NumVertices, g.NumEdges(), g.Alpha)

	// Execute PageRank twice: uniform default vs proxy-guided.
	pr := proxygraph.NewPageRank()
	uniform, err := proxygraph.RunUniform(pr, g, cl, proxygraph.NewHybrid(), 7)
	if err != nil {
		log.Fatal(err)
	}
	guided, err := proxygraph.RunPooled(pr, g, cl, proxygraph.NewHybrid(), pool, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nuniform default : %8.4fs simulated, %7.1f J\n",
		uniform.SimSeconds, uniform.EnergyJoules)
	fmt.Printf("proxy-guided    : %8.4fs simulated, %7.1f J\n",
		guided.SimSeconds, guided.EnergyJoules)
	fmt.Printf("speedup %.2fx, energy saved %.1f%%\n",
		uniform.SimSeconds/guided.SimSeconds,
		(1-guided.EnergyJoules/uniform.EnergyJoules)*100)

	// The results themselves are identical regardless of partitioning.
	ru := uniform.Output.([]float64)
	rg := guided.Output.([]float64)
	maxDiff := 0.0
	for i := range ru {
		if d := abs(ru[i] - rg[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max rank difference across partitionings: %.2g (exactness check)\n", maxDiff)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
