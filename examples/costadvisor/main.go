// Costadvisor: the paper's Section V-C cost-efficiency projection.
//
// Cloud users cannot tell which instance type is cost-effective for graph
// work from the price sheet alone. This example profiles every EC2 machine
// of Table I on the synthetic proxy set and prints, per application, the
// speedup/cost Pareto — reproducing the paper's observations that the three
// 2xlarge categories cluster together and that c4.8xlarge is the most
// expensive machine per task for graph workloads.
//
// Run with: go run ./examples/costadvisor
package main

import (
	"fmt"
	"log"
	"sort"

	"proxygraph"
)

func main() {
	profiler, err := proxygraph.NewProxyProfiler(256, 1)
	if err != nil {
		log.Fatal(err)
	}

	var machines []proxygraph.Machine
	for _, m := range proxygraph.MachineCatalog() {
		if m.Virtual {
			machines = append(machines, m)
		}
	}

	for _, app := range proxygraph.Apps() {
		type point struct {
			name          string
			speedup, cost float64
		}
		var points []point
		var slowest float64
		times := map[string]float64{}
		for _, m := range machines {
			cl, err := proxygraph.NewCluster(m)
			if err != nil {
				log.Fatal(err)
			}
			total := 0.0
			for _, proxy := range profiler.Proxies {
				res, err := proxygraph.RunUniform(app, proxy, cl, proxygraph.NewRandomHash(), 1)
				if err != nil {
					log.Fatal(err)
				}
				total += res.SimSeconds
			}
			times[m.Name] = total
			if total > slowest {
				slowest = total
			}
		}
		for _, m := range machines {
			points = append(points, point{
				name:    m.Name,
				speedup: slowest / times[m.Name],
				cost:    m.CostPerTask(times[m.Name]),
			})
		}
		sort.Slice(points, func(i, j int) bool { return points[i].cost < points[j].cost })

		fmt.Printf("\n%s (cheapest per task first):\n", app.Name())
		for _, p := range points {
			fmt.Printf("  %-12s speedup %5.2fx  cost/task $%.6f\n", p.name, p.speedup, p.cost)
		}
		fmt.Printf("  -> best value: %s; most expensive: %s\n",
			points[0].name, points[len(points)-1].name)
	}
}
