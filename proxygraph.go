// Package proxygraph is a from-scratch reproduction of "Proxy-Guided Load
// Balancing of Graph Processing Workloads on Heterogeneous Clusters"
// (ICPP 2016): a PowerGraph-style distributed graph-processing system whose
// graph ingress is guided by Computation Capability Ratios (CCRs) measured
// by profiling synthetic power-law proxy graphs on a simulated heterogeneous
// cluster.
//
// This package is the public facade. The typical flow mirrors the paper's
// Fig 7:
//
//	// 1. Build the heterogeneous cluster (Table I machines or custom).
//	cl, _ := proxygraph.NewCluster(
//	        proxygraph.MustMachine("m4.2xlarge"),
//	        proxygraph.MustMachine("c4.2xlarge"))
//
//	// 2. One-time offline profiling with synthetic proxy graphs.
//	profiler, _ := proxygraph.NewProxyProfiler(64, 1) // 1/64 Table II scale
//	pool, _ := proxygraph.BuildPool(cl, proxygraph.Apps(), profiler)
//
//	// 3. Load or generate a graph and run: the CCR picked from the pool
//	//    weights the partitioner, balancing the barrier times.
//	g, _ := proxygraph.Generate(proxygraph.Spec{
//	        Name: "mygraph", Vertices: 100000, Edges: 1200000}, 7)
//	res, _ := proxygraph.RunPooled(proxygraph.NewPageRank(), g, cl,
//	        proxygraph.NewHybrid(), pool, 7)
//
// Everything the paper evaluates is reproducible through Lab (see
// bench_test.go and cmd/bench).
package proxygraph

import (
	"fmt"

	"proxygraph/internal/advisor"
	"proxygraph/internal/apps"
	"proxygraph/internal/cluster"
	"proxygraph/internal/core"
	"proxygraph/internal/dynamic"
	"proxygraph/internal/engine"
	"proxygraph/internal/exp"
	"proxygraph/internal/gen"
	"proxygraph/internal/graph"
	"proxygraph/internal/metrics"
	"proxygraph/internal/partition"
	"proxygraph/internal/powerlaw"
	"proxygraph/internal/workload"
)

// --- Graphs ---

// Graph is an immutable edge-list graph (see internal/graph).
type Graph = graph.Graph

// Edge is a directed edge.
type Edge = graph.Edge

// VertexID identifies a vertex.
type VertexID = graph.VertexID

// Spec describes a graph to generate; Kind selects the structural family.
type Spec = gen.Spec

// Kind selects a generator family (power-law proxy, amazon-like, ...).
type Kind = gen.Kind

// Generator kinds.
const (
	KindPowerLaw = gen.KindPowerLaw
	KindAmazon   = gen.KindAmazon
	KindCitation = gen.KindCitation
	KindSocial   = gen.KindSocial
	KindWiki     = gen.KindWiki
	KindRMAT     = gen.KindRMAT
)

// Generate materializes a graph spec deterministically from seed
// (Algorithm 1 of the paper for power-law kinds).
func Generate(spec Spec, seed uint64) (*Graph, error) { return gen.Generate(spec, seed) }

// TableIISpecs returns the paper's seven graphs (four real-world emulations
// plus three synthetic proxies).
func TableIISpecs() []Spec { return gen.TableII() }

// RealGraphSpecs returns the four real-world graph specs of Table II.
func RealGraphSpecs() []Spec { return gen.RealGraphs() }

// ProxyGraphSpecs returns the three synthetic proxy specs of Table II.
func ProxyGraphSpecs() []Spec { return gen.ProxyGraphs() }

// ReadGraphFile loads a graph from a SNAP-style text edge list or the
// compact ".bin" format.
func ReadGraphFile(path string) (*Graph, error) { return graph.ReadFile(path) }

// WriteGraphFile stores a graph, selecting the format by extension.
func WriteGraphFile(path string, g *Graph) error { return graph.WriteFile(path, g) }

// FitAlpha computes the power-law exponent α of a graph from its vertex and
// edge counts by solving Eq 7 of the paper with Newton's method.
func FitAlpha(vertices, edges int64) (float64, error) {
	return powerlaw.FitAlphaForGraph(vertices, edges)
}

// --- Machines and clusters ---

// Machine models one compute node (Table I).
type Machine = cluster.Machine

// Cluster is a set of machines with an interconnect.
type Cluster = cluster.Cluster

// MachineCatalog returns the Table I machines.
func MachineCatalog() []Machine { return cluster.Catalog() }

// MachineByName looks up a Table I machine.
func MachineByName(name string) (Machine, bool) { return cluster.ByName(name) }

// MustMachine looks up a Table I machine and panics if it is unknown;
// convenient in examples and tests.
func MustMachine(name string) Machine {
	m, ok := cluster.ByName(name)
	if !ok {
		panic(fmt.Sprintf("proxygraph: unknown machine %q", name))
	}
	return m
}

// LocalXeon constructs a physical Xeon-class machine with the given core
// count and frequency.
func LocalXeon(name string, cores int, freqGHz float64) Machine {
	return cluster.LocalXeon(name, cores, freqGHz)
}

// NewCluster builds a cluster over the machines with the default network.
func NewCluster(machines ...Machine) (*Cluster, error) { return cluster.New(machines...) }

// --- Applications ---

// App is a runnable graph application.
type App = apps.App

// Result reports one application execution (simulated time, energy,
// per-machine loads, and the application output).
type Result = engine.Result

// Apps returns the paper's four applications (PageRank, Coloring, Connected
// Components, Triangle Count).
func Apps() []App { return apps.All() }

// AppsWithExtensions additionally includes the BFS, SSSP, k-core, delta
// PageRank and batched-traversal (ClusterBFS family) extensions.
func AppsWithExtensions() []App { return apps.WithExtensions() }

// AppByName returns the named application.
func AppByName(name string) (App, error) { return apps.ByName(name) }

// NewPageRank returns the PageRank application with PowerGraph defaults.
func NewPageRank() *apps.PageRank { return apps.NewPageRank() }

// NewColoring returns the asynchronous greedy Coloring application.
func NewColoring() *apps.Coloring { return apps.NewColoring() }

// NewConnectedComponents returns the label-propagation CC application.
func NewConnectedComponents() *apps.ConnectedComponents { return apps.NewConnectedComponents() }

// NewTriangleCount returns the Triangle Count application.
func NewTriangleCount() *apps.TriangleCount { return apps.NewTriangleCount() }

// NewBFS returns the BFS extension application.
func NewBFS() *apps.BFS { return apps.NewBFS() }

// --- Partitioning ---

// Partitioner assigns every edge to a machine following a share vector.
type Partitioner = partition.Partitioner

// Placement is a finalized vertex-cut (edge owners, masters, mirrors).
type Placement = engine.Placement

// Partitioners returns the paper's five algorithms (random, oblivious, grid,
// hybrid, ginger) with default parameters.
func Partitioners() []Partitioner { return partition.All() }

// PartitionerByName returns the named algorithm.
func PartitionerByName(name string) (Partitioner, error) { return partition.ByName(name) }

// NewRandomHash returns the weighted Random Hash vertex-cut.
func NewRandomHash() *partition.RandomHash { return partition.NewRandomHash() }

// NewOblivious returns the greedy Oblivious vertex-cut.
func NewOblivious() *partition.Oblivious { return partition.NewOblivious() }

// NewGrid returns the 2D Grid-constrained vertex-cut.
func NewGrid() *partition.Grid { return partition.NewGrid() }

// NewHybrid returns the Hybrid mixed-cut.
func NewHybrid() *partition.Hybrid { return partition.NewHybrid() }

// NewGinger returns the Ginger (Fennel-style) mixed-cut.
func NewGinger() *partition.Ginger { return partition.NewGinger() }

// UniformShares returns equal shares for m machines (the default system).
func UniformShares(m int) []float64 { return partition.UniformShares(m) }

// NormalizeShares scales positive weights (e.g. raw CCR ratios) to sum to 1.
func NormalizeShares(weights []float64) ([]float64, error) {
	return partition.NormalizeShares(weights)
}

// Partition assigns g's edges across len(shares) machines and finalizes the
// master/mirror placement.
func Partition(p Partitioner, g *Graph, shares []float64, seed uint64) (*Placement, error) {
	return partition.Apply(p, g, shares, seed)
}

// --- CCR profiling (the paper's contribution) ---

// CCR holds an application's per-machine-group capability ratios (Eq 1).
type CCR = core.CCR

// Pool is the offline-profiled CCR pool of Fig 7a.
type Pool = core.Pool

// Estimator produces an application's CCR for a cluster.
type Estimator = core.Estimator

// NewProxyProfiler generates the paper's three synthetic proxy graphs at
// 1/scale of their Table II sizes and returns the proxy-profiling estimator
// (this paper's methodology).
func NewProxyProfiler(scale int, seed uint64) (*core.ProxyProfiler, error) {
	return core.NewProxyProfiler(scale, seed)
}

// NewThreadCountEstimator returns the prior work's estimator: capability
// proportional to hardware threads minus two reserved for communication.
func NewThreadCountEstimator() *core.ThreadCount { return core.NewThreadCount() }

// UniformEstimator returns the default system's all-machines-equal estimate.
func UniformEstimator() Estimator { return core.Uniform{} }

// MeasureCCR measures the ground-truth CCR of app on cl using graph g
// (one standalone run per machine group).
func MeasureCCR(cl *Cluster, app App, g *Graph) (CCR, error) {
	return core.MeasureCCR(cl, app, g)
}

// BuildPool profiles every application with the estimator and collects the
// CCRs into a pool.
func BuildPool(cl *Cluster, applications []App, est Estimator) (*Pool, error) {
	return core.BuildPool(cl, applications, est)
}

// --- End-to-end runs ---

// Run partitions g over cl with explicit shares and executes the app.
func Run(app App, g *Graph, cl *Cluster, p Partitioner, shares []float64, seed uint64) (*Result, error) {
	pl, err := partition.Apply(p, g, shares, seed)
	if err != nil {
		return nil, err
	}
	return app.Run(pl, cl)
}

// RunWithCCR partitions g following the CCR's shares for cl and executes
// the app — the heterogeneity-aware flow of Fig 7b.
func RunWithCCR(app App, g *Graph, cl *Cluster, p Partitioner, ccr CCR, seed uint64) (*Result, error) {
	shares, err := ccr.SharesFor(cl)
	if err != nil {
		return nil, err
	}
	return Run(app, g, cl, p, shares, seed)
}

// RunPooled picks the app's CCR from the pool and runs like RunWithCCR.
func RunPooled(app App, g *Graph, cl *Cluster, p Partitioner, pool *Pool, seed uint64) (*Result, error) {
	ccr, ok := pool.Get(app.Name())
	if !ok {
		return nil, fmt.Errorf("proxygraph: no pooled CCR for application %q", app.Name())
	}
	return RunWithCCR(app, g, cl, p, ccr, seed)
}

// RunUniform partitions g evenly (the default homogeneous assumption) and
// executes the app.
func RunUniform(app App, g *Graph, cl *Cluster, p Partitioner, seed uint64) (*Result, error) {
	return Run(app, g, cl, p, partition.UniformShares(cl.Size()), seed)
}

// --- Experiments ---

// Lab reproduces the paper's tables and figures (see internal/exp).
type Lab = exp.Lab

// ExpConfig controls experiment scale and seeds.
type ExpConfig = exp.Config

// Table is the formatted output of one experiment.
type Table = metrics.Table

// NewLab creates an experiment lab. A zero config selects the defaults
// (scale 1/64, seed 42).
func NewLab(cfg ExpConfig) *Lab { return exp.NewLab(cfg) }

// TableI renders the machine-configuration table.
func TableI() *Table { return exp.TableI() }

// --- Extensions beyond the paper ---

// NewSSSP returns the weighted single-source shortest-paths extension.
func NewSSSP() *apps.SSSP { return apps.NewSSSP() }

// NewKCore returns the k-core decomposition extension.
func NewKCore() *apps.KCore { return apps.NewKCore() }

// NewClusterBFS returns the bit-parallel batched multi-source BFS extension
// (64 sources packed one bit lane per uint64 word).
func NewClusterBFS() *apps.ClusterBFS { return apps.NewClusterBFS() }

// NewLandmarkOracle returns the landmark distance-oracle workload built on
// ClusterBFS.
func NewLandmarkOracle() *apps.LandmarkOracle { return apps.NewLandmarkOracle() }

// NewKSeedReach returns the k-seed reachability workload built on ClusterBFS.
func NewKSeedReach() *apps.KSeedReach { return apps.NewKSeedReach() }

// NewHDRF returns the HDRF streaming vertex-cut extension.
func NewHDRF() *partition.HDRF { return partition.NewHDRF() }

// PartitionersWithExtensions returns the paper's five algorithms plus HDRF.
func PartitionersWithExtensions() []Partitioner { return partition.WithExtensions() }

// NewSubsampleProfiler returns the natural-graph subsampling estimator the
// paper's introduction argues against; see the abl-subsample experiment for
// the quantified comparison.
func NewSubsampleProfiler(reference *Graph, fraction float64, seed uint64) *core.SubsampleProfiler {
	return core.NewSubsampleProfiler(reference, fraction, seed)
}

// AttachWeights assigns deterministic pseudo-random edge weights in
// [minW, maxW), enabling the weighted applications.
func AttachWeights(g *Graph, minW, maxW float32, seed uint64) *Graph {
	return graph.AttachWeights(g, minW, maxW, seed)
}

// SampleEdges returns a uniform edge subsample of g (vertex set unchanged).
func SampleEdges(g *Graph, fraction float64, seed uint64) (*Graph, error) {
	return graph.SampleEdges(g, fraction, seed)
}

// TraceGantt renders a Result's execution trace as an ASCII timeline for
// straggler analysis.
func TraceGantt(res *Result, width int) string { return engine.TraceGantt(res, width) }

// StragglerShare returns, per machine, the fraction of phases it straggled.
func StragglerShare(res *Result) []float64 { return engine.StragglerShare(res) }

// IngressReport breaks down the loading/finalization phase per machine.
type IngressReport = engine.IngressReport

// Ingress estimates a placement's loading/finalization cost on a cluster.
func Ingress(pl *Placement, cl *Cluster) (*IngressReport, error) {
	return engine.Ingress(pl, cl)
}

// NewMigrator returns a Mizan-style dynamic load balancer (related work [13]
// of the paper) usable with the RunRebalanced application variants.
func NewMigrator(seed uint64) *dynamic.Migrator { return dynamic.NewMigrator(seed) }

// Rebalancer is a dynamic load-balancing policy invoked between supersteps.
type Rebalancer = engine.Rebalancer

// AdvisorRequest parameterizes a cluster-composition recommendation.
type AdvisorRequest = advisor.Request

// AdvisorSelection is one recommended cluster composition.
type AdvisorSelection = advisor.Selection

// Advisor objectives.
const (
	AdvisorMaxSpeed          = advisor.MaxSpeed
	AdvisorMaxSpeedPerDollar = advisor.MaxSpeedPerDollar
)

// MeasureSpeeds profiles machines standalone on the proxy set and returns
// per-type speeds for RecommendCluster.
func MeasureSpeeds(machines []Machine, applications []App, profiler *core.ProxyProfiler) (advisor.Speeds, error) {
	return advisor.MeasureSpeeds(machines, applications, profiler)
}

// RecommendCluster enumerates machine compositions under the request and
// returns the best plus the ranked top candidates.
func RecommendCluster(catalog []Machine, speeds advisor.Speeds, req AdvisorRequest) (AdvisorSelection, []AdvisorSelection, error) {
	return advisor.Recommend(catalog, speeds, req)
}

// LoadPoolFile reads a CCR pool JSON written by Pool.SaveFile or
// cmd/profiler.
func LoadPoolFile(path string) (*Pool, error) { return core.LoadPoolFile(path) }

// FitAlphaMLE estimates α by maximum likelihood from an observed degree
// sequence (Clauset-style), complementing the paper's |V|,|E| moment fit.
func FitAlphaMLE(degrees []int32, dmin int) (float64, error) {
	return powerlaw.FitAlphaMLE(degrees, dmin)
}

// FromDegreeSequence generates a graph matching an out-degree sequence (the
// configuration model) — custom proxies cloned from a measured workload.
func FromDegreeSequence(name string, degrees []int32, seed uint64) (*Graph, error) {
	return gen.FromDegreeSequence(name, degrees, seed)
}

// WorkloadJob is one application × graph unit in a session.
type WorkloadJob = workload.Job

// WorkloadSession executes job streams on a cluster under a CCR estimator,
// charging the proxy system's one-time profiling cost (the Section III-B
// amortization argument).
type WorkloadSession = workload.Session

// WorkloadReport summarizes one session run.
type WorkloadReport = workload.Report

// RandomJobs draws a deterministic mixed job stream over the Table II
// real-world graphs and the paper's four applications.
func RandomJobs(n, scale int, seed uint64) ([]WorkloadJob, error) {
	return workload.RandomJobs(n, scale, seed)
}

// SessionCrossover returns the job index at which a's cumulative time drops
// below b's (0 = never).
func SessionCrossover(a, b *WorkloadReport) int { return workload.Crossover(a, b) }
