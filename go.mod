module proxygraph

go 1.22
