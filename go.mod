module proxygraph

go 1.24
