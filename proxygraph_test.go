package proxygraph

import (
	"math"
	"testing"
)

// TestQuickstartFlow exercises the full public API the way the package doc
// describes: build a cluster, profile with proxies, pool CCRs, run an
// application with CCR-guided partitioning, and beat the uniform default.
func TestQuickstartFlow(t *testing.T) {
	cl, err := NewCluster(MustMachine("m4.2xlarge"), MustMachine("c4.8xlarge"))
	if err != nil {
		t.Fatal(err)
	}
	profiler, err := NewProxyProfiler(512, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := BuildPool(cl, Apps(), profiler)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Len() != 4 {
		t.Fatalf("pool has %d apps", pool.Len())
	}
	g, err := Generate(Spec{Name: "quick", Vertices: 20000, Edges: 240000, Kind: KindPowerLaw}, 7)
	if err != nil {
		t.Fatal(err)
	}
	guided, err := RunPooled(NewPageRank(), g, cl, NewHybrid(), pool, 7)
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := RunUniform(NewPageRank(), g, cl, NewHybrid(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if guided.SimSeconds >= uniform.SimSeconds {
		t.Errorf("CCR-guided run (%.4fs) should beat uniform (%.4fs) on this heterogeneous cluster",
			guided.SimSeconds, uniform.SimSeconds)
	}
	ranks := guided.Output.([]float64)
	if len(ranks) != g.NumVertices {
		t.Errorf("rank vector has %d entries for %d vertices", len(ranks), g.NumVertices)
	}
}

func TestFacadeCatalogs(t *testing.T) {
	if len(MachineCatalog()) != 8 {
		t.Error("machine catalog should have Table I's 8 machines")
	}
	if len(TableIISpecs()) != 7 || len(RealGraphSpecs()) != 4 || len(ProxyGraphSpecs()) != 3 {
		t.Error("Table II catalogs wrong")
	}
	if len(Apps()) != 4 || len(AppsWithExtensions()) != 11 {
		t.Error("app registry wrong")
	}
	if len(Partitioners()) != 5 || len(PartitionersWithExtensions()) != 6 {
		t.Error("partitioner registry wrong")
	}
	if _, ok := MachineByName("c4.xlarge"); !ok {
		t.Error("MachineByName miss")
	}
	if _, err := AppByName("pagerank"); err != nil {
		t.Error(err)
	}
	if _, err := PartitionerByName("ginger"); err != nil {
		t.Error(err)
	}
	if TableI() == nil || len(TableI().Rows) != 8 {
		t.Error("TableI render wrong")
	}
}

func TestFacadeMustMachinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMachine should panic on unknown machines")
		}
	}()
	MustMachine("quantum.9000xl")
}

func TestFacadeFitAlpha(t *testing.T) {
	alpha, err := FitAlpha(3_200_000, 15_962_953)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alpha-2.1) > 0.15 {
		t.Errorf("fitted alpha %v, want ~2.1 (Table II synthetic two)", alpha)
	}
}

func TestFacadeShares(t *testing.T) {
	s := UniformShares(4)
	if len(s) != 4 || s[0] != 0.25 {
		t.Errorf("UniformShares = %v", s)
	}
	n, err := NormalizeShares([]float64{1, 3})
	if err != nil || n[1] != 0.75 {
		t.Errorf("NormalizeShares = %v, %v", n, err)
	}
}

func TestFacadeMeasureAndRunWithCCR(t *testing.T) {
	cl, err := NewCluster(LocalXeon("little", 2, 2.0), LocalXeon("big", 8, 2.5))
	if err != nil {
		t.Fatal(err)
	}
	g, err := Generate(Spec{Name: "ccr", Vertices: 10000, Edges: 80000, Kind: KindSocial}, 11)
	if err != nil {
		t.Fatal(err)
	}
	ccr, err := MeasureCCR(cl, NewConnectedComponents(), g)
	if err != nil {
		t.Fatal(err)
	}
	if ccr.Ratios["big"] <= ccr.Ratios["little"] {
		t.Fatalf("big machine should be faster: %v", ccr.Ratios)
	}
	res, err := RunWithCCR(NewConnectedComponents(), g, cl, NewRandomHash(), ccr, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimSeconds <= 0 || res.EnergyJoules <= 0 {
		t.Error("run accounting empty")
	}
}

func TestFacadeGraphIO(t *testing.T) {
	g, err := Generate(Spec{Name: "io", Vertices: 500, Edges: 2000, Kind: KindPowerLaw}, 13)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/g.bin"
	if err := WriteGraphFile(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Error("round trip lost edges")
	}
}

func TestFacadePartition(t *testing.T) {
	g, err := Generate(Spec{Name: "p", Vertices: 2000, Edges: 16000, Kind: KindPowerLaw}, 17)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Partition(NewGrid(), g, UniformShares(4), 17)
	if err != nil {
		t.Fatal(err)
	}
	if pl.ReplicationFactor() < 1 {
		t.Error("replication factor below 1")
	}
}

func TestFacadeDynamicRebalancing(t *testing.T) {
	cl, err := NewCluster(LocalXeon("xeon-4c", 4, 2.5), LocalXeon("xeon-12c", 12, 2.5))
	if err != nil {
		t.Fatal(err)
	}
	g, err := Generate(Spec{Name: "dyn", Vertices: 15000, Edges: 180000, Kind: KindPowerLaw}, 19)
	if err != nil {
		t.Fatal(err)
	}
	pr := NewPageRank()
	pr.Tolerance = 0
	pr.MaxIters = 10
	pl, err := Partition(NewRandomHash(), g, UniformShares(2), 19)
	if err != nil {
		t.Fatal(err)
	}
	mig := NewMigrator(19)
	res, err := pr.RunRebalanced(pl, cl, mig)
	if err != nil {
		t.Fatal(err)
	}
	if mig.Migrations == 0 {
		t.Error("migrator never fired")
	}
	if res.SimSeconds <= 0 {
		t.Error("no time charged")
	}
}

func TestFacadeAdvisor(t *testing.T) {
	profiler, err := NewProxyProfiler(1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	catalog := []Machine{MustMachine("c4.xlarge"), MustMachine("c4.2xlarge")}
	speeds, err := MeasureSpeeds(catalog, Apps(), profiler)
	if err != nil {
		t.Fatal(err)
	}
	best, top, err := RecommendCluster(catalog, speeds, AdvisorRequest{
		BudgetPerHour: 1, Objective: AdvisorMaxSpeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.Speed <= 0 || len(top) == 0 {
		t.Error("degenerate recommendation")
	}
}

func TestFacadePoolFile(t *testing.T) {
	cl, err := NewCluster(MustMachine("c4.xlarge"), MustMachine("c4.2xlarge"))
	if err != nil {
		t.Fatal(err)
	}
	pool, err := BuildPool(cl, Apps(), NewThreadCountEstimator())
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/pool.json"
	if err := pool.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPoolFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != pool.Len() {
		t.Error("pool file round trip lost entries")
	}
}

func TestFacadeTraceHelpers(t *testing.T) {
	cl, err := NewCluster(MustMachine("c4.xlarge"), MustMachine("c4.8xlarge"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := Generate(Spec{Name: "tr", Vertices: 3000, Edges: 30000, Kind: KindPowerLaw}, 23)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunUniform(NewPageRank(), g, cl, NewRandomHash(), 23)
	if err != nil {
		t.Fatal(err)
	}
	if gantt := TraceGantt(res, 20); len(gantt) == 0 {
		t.Error("empty gantt")
	}
	shares := StragglerShare(res)
	if len(shares) != 2 {
		t.Fatalf("straggler shares = %v", shares)
	}
	// Uniform partition on this cluster: the xlarge must dominate the barriers.
	if shares[0] < 0.9 {
		t.Errorf("xlarge straggler share = %v, want ~1", shares[0])
	}
	pl, err := Partition(NewHybrid(), g, UniformShares(2), 23)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Ingress(pl, cl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 {
		t.Error("ingress makespan empty")
	}
}
