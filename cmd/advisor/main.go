// Command advisor recommends cluster compositions for graph workloads: it
// profiles the EC2 catalog on synthetic proxy graphs (Section V-C of the
// paper) and enumerates machine combinations under an hourly budget, ranking
// them by proxy-measured throughput or throughput per dollar.
//
// Usage:
//
//	advisor -budget 2.50
//	advisor -budget 1.00 -objective speed-per-dollar -max 6
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"proxygraph/internal/advisor"
	"proxygraph/internal/apps"
	"proxygraph/internal/cluster"
	"proxygraph/internal/core"
	"proxygraph/internal/metrics"
)

func main() {
	var (
		budget    = flag.Float64("budget", 2.0, "hourly budget in USD (0 = unlimited)")
		objective = flag.String("objective", "speed", "objective: speed or speed-per-dollar")
		maxM      = flag.Int("max", 8, "maximum machines in a composition")
		minM      = flag.Int("min", 1, "minimum machines in a composition")
		scale     = flag.Int("scale", 256, "proxy graphs at 1/scale of Table II size")
		seed      = flag.Uint64("seed", 42, "profiling seed")
	)
	flag.Parse()

	var obj advisor.Objective
	switch *objective {
	case "speed":
		obj = advisor.MaxSpeed
	case "speed-per-dollar":
		obj = advisor.MaxSpeedPerDollar
	default:
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}

	var catalog []cluster.Machine
	for _, m := range cluster.Catalog() {
		if m.Virtual {
			catalog = append(catalog, m)
		}
	}

	fmt.Println("profiling the catalog on synthetic proxy graphs...")
	profiler, err := core.NewProxyProfiler(*scale, *seed)
	if err != nil {
		fatal(err)
	}
	speeds, err := advisor.MeasureSpeeds(catalog, apps.All(), profiler)
	if err != nil {
		fatal(err)
	}

	_, top, err := advisor.Recommend(catalog, speeds, advisor.Request{
		BudgetPerHour: *budget,
		MaxMachines:   *maxM,
		MinMachines:   *minM,
		Objective:     obj,
	})
	if err != nil {
		fatal(err)
	}

	t := metrics.NewTable(fmt.Sprintf("Top compositions (budget $%.2f/h, objective %s)", *budget, *objective),
		"rank", "machines", "$/hour", "speed", "speed/$")
	for i, s := range top {
		t.AddRow(fmt.Sprint(i+1), compact(s.MachineNames),
			fmt.Sprintf("%.3f", s.CostPerHour),
			metrics.F(s.Speed, 1), metrics.F(s.SpeedPerDollar, 1))
	}
	t.AddNote("speeds are proxy-profiled (geomean over the paper's four applications and three proxies)")
	fmt.Print(t)
}

// compact renders ["a","a","b"] as "2x a + 1x b".
func compact(names []string) string {
	counts := map[string]int{}
	var order []string
	for _, n := range names {
		if counts[n] == 0 {
			order = append(order, n)
		}
		counts[n]++
	}
	parts := make([]string, len(order))
	for i, n := range order {
		parts[i] = fmt.Sprintf("%dx %s", counts[n], n)
	}
	return strings.Join(parts, " + ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "advisor:", err)
	os.Exit(1)
}
