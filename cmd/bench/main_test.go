package main

import (
	"strings"
	"testing"
)

func TestSelectExperimentsAll(t *testing.T) {
	exps := experiments()
	got, err := selectExperiments("all", exps)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(exps) {
		t.Fatalf("selected %d of %d experiments", len(got), len(exps))
	}
	for i, e := range exps {
		if got[i] != e.name {
			t.Fatalf("catalog order lost at %d: %q != %q", i, got[i], e.name)
		}
	}
}

func TestSelectExperimentsList(t *testing.T) {
	got, err := selectExperiments(" fig4 , recovery ", experiments())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "fig4" || got[1] != "recovery" {
		t.Fatalf("selected %v", got)
	}
}

func TestSelectExperimentsUnknown(t *testing.T) {
	_, err := selectExperiments("fig4,nonsense", experiments())
	if err == nil {
		t.Fatal("unknown experiment must be rejected")
	}
	if !strings.Contains(err.Error(), `"nonsense"`) || !strings.Contains(err.Error(), "known:") {
		t.Fatalf("error should name the bad experiment and list known ones: %v", err)
	}
}

// TestCatalogHasUniqueNames guards against two experiments shadowing each
// other in the -exp lookup map.
func TestCatalogHasUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments() {
		if seen[e.name] {
			t.Errorf("duplicate experiment name %q", e.name)
		}
		seen[e.name] = true
		if e.desc == "" {
			t.Errorf("experiment %q has no description", e.name)
		}
		if e.run == nil {
			t.Errorf("experiment %q has no run function", e.name)
		}
	}
}
