// Command bench reproduces the paper's evaluation: every table and figure
// of Section V plus the DESIGN.md ablations, at a configurable fraction of
// the published graph sizes.
//
// Usage:
//
//	bench                       # everything at 1/64 scale
//	bench -exp fig9 -scale 16   # one experiment, bigger graphs
//	bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"proxygraph/internal/exp"
	"proxygraph/internal/metrics"
	"proxygraph/internal/partition"
	"proxygraph/internal/report"
	"proxygraph/internal/trace"
)

type experiment struct {
	name string
	desc string
	run  func(*exp.Lab) ([]*metrics.Table, error)
}

func one(f func(*exp.Lab) (*metrics.Table, error)) func(*exp.Lab) ([]*metrics.Table, error) {
	return func(l *exp.Lab) ([]*metrics.Table, error) {
		t, err := f(l)
		if err != nil {
			return nil, err
		}
		return []*metrics.Table{t}, nil
	}
}

func experiments() []experiment {
	return []experiment{
		{"table1", "machine configurations", func(l *exp.Lab) ([]*metrics.Table, error) {
			return []*metrics.Table{exp.TableI()}, nil
		}},
		{"table2", "graphs with fitted alphas", one((*exp.Lab).TableII)},
		{"fig2", "estimated vs real speedup scaling", one((*exp.Lab).Fig2)},
		{"fig4", "imbalanced vs balanced per-machine execution profile", one((*exp.Lab).Fig4)},
		{"fig6", "power-law degree distribution", one((*exp.Lab).Fig6)},
		{"fig8a", "CCR accuracy, c4 ladder", one((*exp.Lab).Fig8a)},
		{"fig8b", "CCR accuracy, 2xlarge categories", one((*exp.Lab).Fig8b)},
		{"fig9", "Case 1 runtimes (EC2, 4 apps x 4 graphs x 5 cuts)", func(l *exp.Lab) ([]*metrics.Table, error) {
			tables, err := l.Fig9()
			if err != nil {
				return nil, err
			}
			summary, err := l.Fig9Summary()
			if err != nil {
				return nil, err
			}
			return append(tables, summary), nil
		}},
		{"fig10a", "Case 2 performance and energy", one((*exp.Lab).Fig10a)},
		{"fig10b", "Case 3 performance and energy", one((*exp.Lab).Fig10b)},
		{"fig11", "cost/performance Pareto", one((*exp.Lab).Fig11)},
		{"replication", "replication factor by algorithm (incl. HDRF)", one((*exp.Lab).ReplicationStudy)},
		{"ingress", "loading/finalization makespans", one((*exp.Lab).IngressStudy)},
		{"dynamic", "Mizan-style dynamic balancing vs static CCR ingress", one((*exp.Lab).DynamicStudy)},
		{"amortization", "one-time profiling cost vs session gains", one((*exp.Lab).AmortizationStudy)},
		{"session", "placement cache vs rebuilt ingress, charged sessions", one((*exp.Lab).SessionThroughputStudy)},
		{"recovery", "checkpoint interval vs crash-recovery cost", one((*exp.Lab).RecoveryStudy)},
		{"clusterbfs", "proxy-predicted vs measured placement for bitset-state batched traversal", one((*exp.Lab).ClusterBFSStudy)},
		{"evolve", "evolving graphs: amended placement + resumed apps vs full rebuild", one((*exp.Lab).EvolveStudy)},
		{"overload", "multi-tenant service under bursty overload (admission, shedding, retries)", one((*exp.Lab).ServiceOverloadStudy)},
		{"freqsweep", "CCR vs little-machine frequency", one((*exp.Lab).FrequencySweep)},
		{"abl-hybrid", "hybrid threshold sweep", one((*exp.Lab).AblationHybridThreshold)},
		{"abl-ginger", "ginger gamma sweep", one((*exp.Lab).AblationGingerGamma)},
		{"abl-proxyset", "proxy set coverage", one((*exp.Lab).AblationProxySet)},
		{"abl-scale", "CCR scale invariance", one((*exp.Lab).AblationScaleInvariance)},
		{"abl-subsample", "proxies vs natural-graph subsampling", one((*exp.Lab).AblationSubsample)},
	}
}

func main() {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		which = flag.String("exp", "all", "experiment name or 'all'")
		scale = flag.Int("scale", 64, "run graphs at 1/scale of Table II size (1 = full)")
		seed  = flag.Uint64("seed", 42, "experiment seed")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		html  = flag.String("html", "", "additionally write a self-contained HTML report here")

		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON of every traced engine run here")
		metricsOut = flag.String("metrics-out", "", "write Prometheus text-format metrics aggregated over the session here")

		ingressShards = flag.Int("ingress-shards", 0, "worker count for parallel ingress scans (0 = GOMAXPROCS)")
	)
	flag.Parse()
	partition.ParallelShards = *ingressShards

	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-12s %s\n", e.name, e.desc)
		}
		return
	}

	selected, err := selectExperiments(*which, exps)
	if err != nil {
		fatal(err)
	}
	names := map[string]experiment{}
	for _, e := range exps {
		names[e.name] = e
	}

	// Open observability outputs before any experiment runs: a bad path must
	// fail in milliseconds, not after the whole catalog.
	var traceFile, metricsFile *os.File
	var rec *trace.Recorder
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(fmt.Errorf("-trace-out: %w", err))
		}
		traceFile = f
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal(fmt.Errorf("-metrics-out: %w", err))
		}
		metricsFile = f
	}
	if traceFile != nil || metricsFile != nil {
		rec = trace.NewRecorder()
	}

	// Assign the recorder only when one exists: a nil *trace.Recorder stored
	// in the Collector interface field would pass the lab's != nil check and
	// crash the first traced run.
	cfg := exp.Config{Scale: *scale, Seed: *seed}
	if rec != nil {
		cfg.Collector = rec
	}
	lab := exp.NewLab(cfg)
	var rep *report.Report
	if *html != "" {
		rep = report.New("proxygraph: paper reproduction",
			fmt.Sprintf("scale 1/%d, seed %d, experiments: %s", *scale, *seed, strings.Join(selected, ", ")))
	}
	for _, name := range selected {
		e := names[name]
		start := time.Now()
		tables, err := e.run(lab)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		for _, t := range tables {
			if *csv {
				fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
			} else {
				fmt.Printf("\n%s", t)
			}
		}
		if rep != nil {
			rep.Add(tables...)
		}
		fmt.Printf("# %s finished in %v\n", name, time.Since(start).Round(time.Millisecond))
	}
	if rep != nil {
		f, err := os.Create(*html)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteHTML(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("# wrote HTML report with %d sections to %s\n", rep.Len(), *html)
	}
	if traceFile != nil {
		err := trace.WriteChromeTrace(traceFile, rec.Events)
		if cerr := traceFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(fmt.Errorf("-trace-out: %w", err))
		}
		fmt.Printf("# wrote %d trace events to %s\n", len(rec.Events), *traceOut)
	}
	if metricsFile != nil {
		reg := trace.NewRegistry()
		trace.Observe(reg, rec.Events)
		err := reg.WritePrometheus(metricsFile)
		if cerr := metricsFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(fmt.Errorf("-metrics-out: %w", err))
		}
		fmt.Printf("# wrote metrics to %s\n", *metricsOut)
	}
}

// selectExperiments resolves the -exp flag against the catalog: "all" keeps
// catalog order, otherwise a comma-separated list is validated name by name.
func selectExperiments(which string, exps []experiment) ([]string, error) {
	names := map[string]bool{}
	var order []string
	for _, e := range exps {
		names[e.name] = true
		order = append(order, e.name)
	}
	if which == "all" {
		return order, nil
	}
	var selected []string
	for _, n := range strings.Split(which, ",") {
		n = strings.TrimSpace(n)
		if !names[n] {
			known := append([]string(nil), order...)
			sort.Strings(known)
			return nil, fmt.Errorf("unknown experiment %q; known: %s", n, strings.Join(known, ", "))
		}
		selected = append(selected, n)
	}
	return selected, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
