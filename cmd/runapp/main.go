// Command runapp executes one graph application end-to-end on a simulated
// heterogeneous cluster: load or generate the graph, pick the CCR (from a
// profiled pool file, live proxy profiling, prior-work estimation or the
// uniform default), partition, run, and report runtime, energy, per-machine
// loads and optionally the superstep timeline.
//
// Usage:
//
//	runapp -app pagerank -file g.bin -cluster xeon:4:2.5,xeon:12:2.5
//	runapp -app triangle_count -spec amazon -scale 64 -estimator prior-work
//	runapp -app coloring -pool pool.json -trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"proxygraph/internal/apps"
	"proxygraph/internal/cliutil"
	"proxygraph/internal/cluster"
	"proxygraph/internal/core"
	"proxygraph/internal/engine"
	"proxygraph/internal/fault"
	"proxygraph/internal/gen"
	"proxygraph/internal/graph"
	"proxygraph/internal/metrics"
	"proxygraph/internal/partition"
	"proxygraph/internal/trace"
	"proxygraph/internal/workload"
)

func main() {
	var (
		appName     = flag.String("app", "pagerank", "application: pagerank, coloring, connected_components, triangle_count, bfs, sssp, kcore, pagerank_async, cluster_bfs, landmark_oracle, kseed_reach")
		sources     = flag.String("sources", "", "comma-separated root vertices for the BFS family (bfs/sssp take the first; cluster_bfs/kseed_reach take the whole list, up to 64 distinct)")
		landmarks   = flag.Int("landmarks", 0, "landmark count for landmark_oracle (0 keeps the default 16)")
		file        = flag.String("file", "", "graph file (.txt or .bin); overrides -spec")
		specName    = flag.String("spec", "social_network", "Table II spec to generate when no -file is given")
		scale       = flag.Int("scale", 64, "spec scale divisor")
		clusterSpec = flag.String("cluster", "xeon:4:2.5,xeon:12:2.5", "machines: catalog names or name:cores:freqGHz")
		algo        = flag.String("algo", "hybrid", "partitioning algorithm")
		estimator   = flag.String("estimator", "proxy", "CCR source: proxy, prior-work, default")
		poolFile    = flag.String("pool", "", "CCR pool JSON from cmd/profiler (overrides -estimator)")
		seed        = flag.Uint64("seed", 42, "run seed")
		timeline    = flag.Bool("trace", false, "print the superstep timeline")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event JSON of the run here (open chrome://tracing or ui.perfetto.dev)")
		metricsOut  = flag.String("metrics-out", "", "write Prometheus text-format metrics of the run here")

		faultSeed  = flag.Uint64("fault-seed", 0, "fault schedule seed (0 disables fault injection)")
		crashes    = flag.Int("crashes", 0, "scheduled machine crashes")
		stragglers = flag.Int("stragglers", 0, "scheduled transient stragglers")
		netFaults  = flag.Int("netfaults", 0, "scheduled network degradation windows")
		checkpoint = flag.Int("checkpoint", 0, "checkpoint every N supersteps (0 disables)")
		recovery   = flag.String("recovery", "checkpoint", "crash recovery policy: checkpoint, restart")

		ingressShards = flag.Int("ingress-shards", 0, "worker count for parallel ingress scans (0 = GOMAXPROCS)")

		evolveInserts = flag.Int("evolve-inserts", 0, "after the run, evolve the graph by this many random edge insertions and re-run incrementally")
		evolveDeletes = flag.Int("evolve-deletes", 0, "after the run, evolve the graph by this many random edge deletions and re-run incrementally")
	)
	flag.Parse()
	partition.ParallelShards = *ingressShards

	app, err := apps.ByName(*appName)
	if err != nil {
		fatal(err)
	}
	if err := configureSources(app, *sources, *landmarks); err != nil {
		fatal(err)
	}
	cl, err := cliutil.ParseCluster(*clusterSpec)
	if err != nil {
		fatal(err)
	}
	g, err := loadGraph(*file, *specName, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	ccr, err := resolveCCR(cl, app, *poolFile, *estimator, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	shares, err := ccr.SharesFor(cl)
	if err != nil {
		fatal(err)
	}
	part, err := partition.ByName(*algo)
	if err != nil {
		fatal(err)
	}

	// Place through the content-keyed cache: for a plain run this is exactly
	// partition.Apply, but it leaves a clean base entry behind for the
	// -evolve-* path to amend instead of re-ingressing.
	cache := workload.NewPlacementCache()
	pl, _, err := cache.Place(part, g, shares, *seed)
	if err != nil {
		fatal(err)
	}
	ingress, err := engine.Ingress(pl, cl)
	if err != nil {
		fatal(err)
	}
	opts, sched, err := faultOptions(cl, *faultSeed, *crashes, *stragglers, *netFaults, *checkpoint, *recovery)
	if err != nil {
		fatal(err)
	}
	// Open the observability outputs before the run so a bad path fails fast
	// instead of after minutes of simulation.
	outs, err := openSinks(*traceOut, *metricsOut)
	if err != nil {
		fatal(err)
	}
	var rec *trace.Recorder
	if outs != nil {
		rec = trace.NewRecorder()
	}
	res, err := runTraced(app, pl, cl, opts, rec)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s on %s (%d vertices, %d edges), %d machines, %s cut\n",
		app.Name(), g.Name, g.NumVertices, g.NumEdges(), cl.Size(), part.Name())
	fmt.Printf("ingress makespan   %s\n", metrics.Seconds(ingress.Makespan))
	fmt.Printf("execution makespan %s over %d supersteps\n", metrics.Seconds(res.SimSeconds), res.Supersteps)
	fmt.Printf("energy             %.1f J\n", res.EnergyJoules)
	fmt.Printf("replication factor %.3f\n", pl.ReplicationFactor())
	for p, m := range cl.Machines {
		fmt.Printf("  m%-2d %-14s busy %s  sent %.0f KB  share %.1f%%\n",
			p, m.Name, metrics.Seconds(res.BusySeconds[p]), res.CommBytes[p]/1024, shares[p]*100)
	}
	if stragglers := engine.StragglerShare(res); stragglers != nil {
		fmt.Printf("straggler shares   %v\n", formatShares(stragglers))
	}
	if opts != nil {
		fmt.Printf("fault schedule     %s\n", sched)
		fmt.Printf("checkpoints        %d written, %d recoveries\n", res.Checkpoints, res.Recoveries)
	}
	if *timeline {
		fmt.Println()
		fmt.Print(engine.TraceGantt(res, 48))
	}
	if rec != nil {
		if err := outs.write(rec.Events); err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Print(trace.Summarize(rec.Events).String())
	}

	if *evolveInserts > 0 || *evolveDeletes > 0 {
		if err := runEvolved(app, res, g, cl, cache, part, shares,
			*evolveInserts, *evolveDeletes, *seed); err != nil {
			fatal(err)
		}
	}
}

// runEvolved mutates the loaded graph by a random batch of *seed-derived edge
// insertions and deletions, then re-runs the application incrementally: the
// placement is revalidated through the cache's content-keyed PlaceEvolved
// (amending the base placement instead of re-ingressing from scratch), and
// applications with a resume path (pagerank, connected_components) warm-start
// from the base run's converged output so re-execution scales with the
// disturbance rather than the graph.
func runEvolved(app apps.App, base *engine.Result, g *graph.Graph, cl *cluster.Cluster,
	cache *workload.PlacementCache, part partition.Partitioner, shares []float64,
	inserts, deletes int, seed uint64) error {
	d, err := gen.RandomDelta(g, gen.DeltaSpec{Inserts: inserts, Deletes: deletes, Time: 1}, seed+1)
	if err != nil {
		return fmt.Errorf("-evolve: %w", err)
	}
	evolved, err := d.Apply(g)
	if err != nil {
		return fmt.Errorf("-evolve: %w", err)
	}
	pl, outcome, err := cache.PlaceEvolved(part, g, d, evolved, shares, seed)
	if err != nil {
		return fmt.Errorf("-evolve: %w", err)
	}
	warm := app
	how := "cold re-run (no resume path)"
	switch a := app.(type) {
	case *apps.PageRank:
		warm = a.Resume(base.Output.([]float64))
		how = "resumed from prior ranks"
	case *apps.ConnectedComponents:
		warm = a.Resume(base.Output.(apps.Components).Labels, d, evolved)
		how = "resumed from prior labels"
	}
	res, err := runTraced(warm, pl, cl, nil, nil)
	if err != nil {
		return fmt.Errorf("-evolve: %w", err)
	}
	fmt.Println()
	fmt.Printf("evolved %s: +%d/-%d edges -> %d vertices, %d edges\n",
		g.Name, len(d.Inserts), len(d.Deletes), evolved.NumVertices, evolved.NumEdges())
	fmt.Printf("placement          %s, %s\n", outcome, how)
	fmt.Printf("execution makespan %s over %d supersteps (base: %s over %d)\n",
		metrics.Seconds(res.SimSeconds), res.Supersteps,
		metrics.Seconds(base.SimSeconds), base.Supersteps)
	return nil
}

// configureSources applies the -sources/-landmarks flags to the BFS-family
// applications. Malformed sets (out of range, duplicated, more than 64) are
// rejected with typed errors by the apps themselves at run time.
func configureSources(app apps.App, list string, landmarks int) error {
	var roots []graph.VertexID
	if list != "" {
		for _, f := range strings.Split(list, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 32)
			if err != nil {
				return fmt.Errorf("-sources: %w", err)
			}
			roots = append(roots, graph.VertexID(v))
		}
	}
	if landmarks > 0 {
		if _, ok := app.(*apps.LandmarkOracle); !ok {
			return fmt.Errorf("-landmarks only applies to landmark_oracle, not %s", app.Name())
		}
	}
	switch a := app.(type) {
	case *apps.BFS:
		if len(roots) > 0 {
			a.Source = roots[0]
		}
	case *apps.SSSP:
		if len(roots) > 0 {
			a.Source = roots[0]
		}
	case *apps.ClusterBFS:
		if len(roots) > 0 {
			a.Sources = roots
		}
	case *apps.KSeedReach:
		if len(roots) > 0 {
			a.Seeds = roots
		}
	case *apps.LandmarkOracle:
		if len(roots) > 0 {
			return fmt.Errorf("-sources: landmark_oracle picks its own roots by degree (use -landmarks to set how many)")
		}
		if landmarks > 0 {
			a.K = landmarks
		}
	default:
		if len(roots) > 0 {
			return fmt.Errorf("-sources: %s takes no source vertices", app.Name())
		}
	}
	return nil
}

// runTraced executes the app through the richest entry point the requested
// options need. Plain runs with no collector take App.Run; anything with
// fault injection or a collector needs the full-options engine path (or, for
// the async Coloring, its Trace field).
func runTraced(app apps.App, pl *engine.Placement, cl *cluster.Cluster,
	opts *engine.Options, rec *trace.Recorder) (*engine.Result, error) {
	if opts == nil && rec == nil {
		return app.Run(pl, cl)
	}
	full := engine.Options{}
	if opts != nil {
		full = *opts
	}
	if rec != nil {
		full.Trace = rec
	}
	if fr, ok := app.(apps.OptsRunner); ok {
		return fr.RunOpts(pl, cl, full)
	}
	if c, ok := app.(*apps.Coloring); ok && opts == nil {
		c.Trace = rec
		return c.Run(pl, cl)
	}
	if opts != nil {
		return nil, fmt.Errorf("%s does not run on the synchronous GAS engine; fault injection and checkpointing need one of: pagerank, connected_components, bfs, cluster_bfs, landmark_oracle, kseed_reach", app.Name())
	}
	return nil, fmt.Errorf("%s does not support execution tracing; -trace-out/-metrics-out need one of: pagerank, connected_components, bfs, cluster_bfs, landmark_oracle, kseed_reach, coloring", app.Name())
}

// sinks holds the pre-opened observability output files.
type sinks struct {
	traceFile   *os.File
	metricsFile *os.File
}

// openSinks creates the requested output files up front, returning nil when
// neither flag was given.
func openSinks(tracePath, metricsPath string) (*sinks, error) {
	if tracePath == "" && metricsPath == "" {
		return nil, nil
	}
	s := &sinks{}
	var err error
	if tracePath != "" {
		if s.traceFile, err = os.Create(tracePath); err != nil {
			return nil, fmt.Errorf("-trace-out: %w", err)
		}
	}
	if metricsPath != "" {
		if s.metricsFile, err = os.Create(metricsPath); err != nil {
			if s.traceFile != nil {
				s.traceFile.Close()
			}
			return nil, fmt.Errorf("-metrics-out: %w", err)
		}
	}
	return s, nil
}

// write renders the recorded event stream into every open sink and closes
// them.
func (s *sinks) write(events []trace.Event) error {
	if s.traceFile != nil {
		err := trace.WriteChromeTrace(s.traceFile, events)
		if cerr := s.traceFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("-trace-out: %w", err)
		}
		fmt.Printf("trace              %s (%d events)\n", s.traceFile.Name(), len(events))
	}
	if s.metricsFile != nil {
		reg := trace.NewRegistry()
		trace.Observe(reg, events)
		err := reg.WritePrometheus(s.metricsFile)
		if cerr := s.metricsFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("-metrics-out: %w", err)
		}
		fmt.Printf("metrics            %s\n", s.metricsFile.Name())
	}
	return nil
}

// faultHorizon bounds where scheduled fault events land: the first 16
// supersteps, which every Table II application reaches at default settings.
const faultHorizon = 16

// faultOptions translates the fault flags into engine options. A nil result
// means the plain Run path (no injection, no checkpointing).
func faultOptions(cl *cluster.Cluster, seed uint64, crashes, stragglers, netFaults, checkpoint int, recovery string) (*engine.Options, string, error) {
	if checkpoint < 0 {
		return nil, "", fmt.Errorf("-checkpoint interval must be non-negative, got %d", checkpoint)
	}
	var policy engine.RecoveryPolicy
	switch recovery {
	case "checkpoint":
		policy = engine.RecoverCheckpoint
	case "restart":
		policy = engine.RecoverRestart
	default:
		return nil, "", fmt.Errorf("unknown recovery policy %q (want checkpoint or restart)", recovery)
	}
	cfg := &engine.FaultConfig{CheckpointEvery: checkpoint, Policy: policy}
	schedText := "fault-free"
	if seed != 0 {
		sched, err := fault.NewSchedule(seed, fault.Spec{
			Machines:      cl.Size(),
			Horizon:       faultHorizon,
			Crashes:       crashes,
			Stragglers:    stragglers,
			NetworkFaults: netFaults,
		})
		if err != nil {
			return nil, "", err
		}
		cfg.Injector = sched
		schedText = sched.String()
	} else if crashes != 0 || stragglers != 0 || netFaults != 0 {
		return nil, "", fmt.Errorf("fault events scheduled without -fault-seed")
	} else if checkpoint == 0 {
		return nil, "", nil
	}
	return &engine.Options{Fault: cfg}, schedText, nil
}

func loadGraph(file, specName string, scale int, seed uint64) (*graph.Graph, error) {
	if file != "" {
		g, err := graph.ReadFile(file)
		if err != nil {
			return nil, err
		}
		if g.Name == "" {
			g.Name = file
		}
		return g, nil
	}
	for _, s := range gen.TableII() {
		if s.Name == specName {
			return gen.Generate(s.Scale(scale), seed)
		}
	}
	return nil, fmt.Errorf("unknown spec %q (see graphgen -list)", specName)
}

func resolveCCR(cl *cluster.Cluster, app apps.App, poolFile, estimator string, scale int, seed uint64) (core.CCR, error) {
	if poolFile != "" {
		pool, err := core.LoadPoolFile(poolFile)
		if err != nil {
			return core.CCR{}, err
		}
		ccr, ok := pool.Get(app.Name())
		if !ok {
			return core.CCR{}, fmt.Errorf("pool %s has no CCR for %q", poolFile, app.Name())
		}
		return ccr, nil
	}
	est, err := cliutil.ParseEstimator(estimator, scale, seed)
	if err != nil {
		return core.CCR{}, err
	}
	return est.Estimate(cl, app)
}

func formatShares(shares []float64) string {
	parts := make([]string, len(shares))
	for i, s := range shares {
		parts[i] = fmt.Sprintf("m%d:%.0f%%", i, s*100)
	}
	return strings.Join(parts, " ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "runapp:", err)
	os.Exit(1)
}
