package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"proxygraph/internal/apps"
	"proxygraph/internal/cluster"
	"proxygraph/internal/core"
	"proxygraph/internal/engine"
	"proxygraph/internal/gen"
	"proxygraph/internal/partition"
	"proxygraph/internal/trace"
)

func testCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(
		cluster.LocalXeon("xeon-4c", 4, 2.5),
		cluster.LocalXeon("xeon-12c", 12, 2.5),
	)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestFaultOptionsValidation(t *testing.T) {
	cl := testCluster(t)
	cases := []struct {
		name       string
		seed       uint64
		crashes    int
		checkpoint int
		recovery   string
		wantErr    string
	}{
		{"negative checkpoint", 0, 0, -1, "checkpoint", "non-negative"},
		{"negative checkpoint with faults", 7, 1, -3, "checkpoint", "non-negative"},
		{"bad recovery policy", 7, 1, 2, "yolo", "unknown recovery policy"},
		{"faults without seed", 0, 2, 0, "checkpoint", "without -fault-seed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := faultOptions(cl, tc.seed, tc.crashes, 0, 0, tc.checkpoint, tc.recovery)
			if err == nil {
				t.Fatal("expected an error")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestFaultOptionsPlainPath(t *testing.T) {
	cl := testCluster(t)
	opts, sched, err := faultOptions(cl, 0, 0, 0, 0, 0, "checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	if opts != nil {
		t.Fatalf("all-zero fault flags should select the plain Run path, got %+v", opts)
	}
	if sched != "" {
		t.Fatalf("plain path should carry no schedule text, got %q", sched)
	}
}

func TestFaultOptionsCheckpointOnly(t *testing.T) {
	cl := testCluster(t)
	opts, sched, err := faultOptions(cl, 0, 0, 0, 0, 4, "restart")
	if err != nil {
		t.Fatal(err)
	}
	if opts == nil || opts.Fault == nil {
		t.Fatal("checkpoint-only flags must produce fault options")
	}
	if opts.Fault.CheckpointEvery != 4 || opts.Fault.Policy != engine.RecoverRestart {
		t.Fatalf("options mistranslated: %+v", opts.Fault)
	}
	if sched != "fault-free" {
		t.Fatalf("schedule text = %q, want fault-free", sched)
	}
}

func TestOpenSinksFailsFastOnUnwritablePath(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "out.json")
	if _, err := openSinks(bad, ""); err == nil {
		t.Error("unwritable -trace-out must fail before the run")
	}
	if _, err := openSinks("", bad); err == nil {
		t.Error("unwritable -metrics-out must fail before the run")
	}
	// A bad metrics path must not leave the trace file handle dangling open;
	// at minimum the call errors and the good file exists but is closed.
	good := filepath.Join(t.TempDir(), "trace.json")
	if _, err := openSinks(good, bad); err == nil {
		t.Error("unwritable -metrics-out with good -trace-out must still fail")
	}
}

func TestOpenSinksNilWhenUnset(t *testing.T) {
	s, err := openSinks("", "")
	if err != nil {
		t.Fatal(err)
	}
	if s != nil {
		t.Fatal("no output flags should mean no sinks")
	}
}

// TestRunTracedWritesArtifacts drives the full runapp observability path:
// run PageRank with a recorder, write both sinks, and check the trace is
// valid Chrome JSON and the metrics are non-empty Prometheus text.
func TestRunTracedWritesArtifacts(t *testing.T) {
	cl := testCluster(t)
	g, err := gen.Generate(gen.RealGraphs()[0].Scale(1024), 42)
	if err != nil {
		t.Fatal(err)
	}
	app, err := apps.ByName("pagerank")
	if err != nil {
		t.Fatal(err)
	}
	ccr, err := core.Uniform{}.Estimate(cl, app)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := ccr.SharesFor(cl)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := partition.Apply(partition.NewHybrid(), g, shares, 42)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.prom")
	outs, err := openSinks(tracePath, metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	res, err := runTraced(app, pl, cl, nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Supersteps == 0 {
		t.Fatal("traced run produced no result")
	}
	if len(rec.Events) == 0 {
		t.Fatal("traced run recorded no events")
	}
	if err := outs.write(rec.Events); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace output has no events")
	}
	prom, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "proxygraph_steps_total") {
		t.Fatalf("metrics output missing expected family:\n%s", prom)
	}
}

// TestRunTracedRejectsUntraceableApp pins the error message for apps without
// a traced entry point.
func TestRunTracedRejectsUntraceableApp(t *testing.T) {
	cl := testCluster(t)
	g, err := gen.Generate(gen.RealGraphs()[0].Scale(1024), 42)
	if err != nil {
		t.Fatal(err)
	}
	app, err := apps.ByName("triangle_count")
	if err != nil {
		t.Fatal(err)
	}
	ccr, err := core.Uniform{}.Estimate(cl, app)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := ccr.SharesFor(cl)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := partition.Apply(partition.NewHybrid(), g, shares, 42)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runTraced(app, pl, cl, nil, trace.NewRecorder()); err == nil {
		t.Fatal("triangle_count with a collector must be rejected")
	}
	// Without faults or a collector the plain path still works.
	if _, err := runTraced(app, pl, cl, nil, nil); err != nil {
		t.Fatal(err)
	}
}
