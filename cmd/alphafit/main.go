// Command alphafit computes the power-law exponent α of a graph with the
// numerical procedure of Section III-A3 of the paper (Newton's method on
// Eq 7), given either a graph file or explicit vertex/edge counts.
//
// Usage:
//
//	alphafit -file social.txt
//	alphafit -vertices 4847571 -edges 68993773
package main

import (
	"flag"
	"fmt"
	"os"

	"proxygraph/internal/graph"
	"proxygraph/internal/powerlaw"
)

func main() {
	var (
		file     = flag.String("file", "", "graph file (.txt edge list or .bin)")
		vertices = flag.Int64("vertices", 0, "vertex count (when no file is given)")
		edges    = flag.Int64("edges", 0, "edge count (when no file is given)")
	)
	flag.Parse()

	v, e := *vertices, *edges
	if *file != "" {
		g, err := graph.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		v, e = int64(g.NumVertices), int64(g.NumEdges())
	}
	if v <= 0 {
		fatal(fmt.Errorf("need -file or positive -vertices/-edges"))
	}
	alpha, err := powerlaw.FitAlphaForGraph(v, e)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("|V| = %d  |E| = %d  avg degree = %.4f\n", v, e, float64(e)/float64(v))
	fmt.Printf("alpha = %.4f\n", alpha)
	if alpha >= 1.9 && alpha <= 2.4 {
		fmt.Println("within the paper's natural-graph band (1.9..2.4): covered by the default proxy set")
	} else {
		fmt.Println("outside the default proxy band: consider generating an additional proxy at this alpha")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alphafit:", err)
	os.Exit(1)
}
