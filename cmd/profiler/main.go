// Command profiler runs the paper's one-time offline CCR profiling
// (Fig 7a): it generates the synthetic proxy graphs, executes every
// application on one representative machine per group, and emits the CCR
// pool as JSON for later graph-processing runs.
//
// Usage:
//
//	profiler -cluster m4.2xlarge,c4.2xlarge -scale 64 -out pool.json
//	profiler -cluster xeon:4:2.5,xeon:12:2.5 -estimator prior-work
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"proxygraph/internal/apps"
	"proxygraph/internal/cliutil"
	"proxygraph/internal/core"
)

func main() {
	var (
		clusterSpec = flag.String("cluster", "m4.2xlarge,c4.2xlarge",
			"comma-separated machines: catalog names or name:cores:freqGHz for local Xeons")
		estimator = flag.String("estimator", "proxy", "estimator: proxy, prior-work, default")
		scale     = flag.Int("scale", 64, "proxy graphs at 1/scale of Table II size")
		seed      = flag.Uint64("seed", 42, "profiling seed")
		out       = flag.String("out", "", "write the CCR pool JSON here (default stdout)")
	)
	flag.Parse()

	cl, err := cliutil.ParseCluster(*clusterSpec)
	if err != nil {
		fatal(err)
	}
	est, err := cliutil.ParseEstimator(*estimator, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	pool, err := core.BuildPool(cl, apps.All(), est)
	if err != nil {
		fatal(err)
	}

	data, err := json.MarshalIndent(pool, "", "  ")
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Println(string(data))
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("profiled %d applications with %q on %d machine groups -> %s\n",
		pool.Len(), est.Name(), len(cl.Representatives()), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "profiler:", err)
	os.Exit(1)
}
