package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"proxygraph/internal/service"
)

// postJob submits a job with an optional idempotency key and decodes the body.
func postJob(t *testing.T, url, body, key string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	return resp, m
}

// waitDone polls a job's status endpoint until it is terminal.
func waitDone(t *testing.T, url string, id int) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var st service.JobStatus
	for {
		resp, err := http.Get(url + "/jobs/" + strconv.Itoa(id))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch st.State {
		case "done", "failed", "shed", "canceled":
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d stuck in %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServiceConfigDurabilityFlags pins the new flags' validation: a negative
// drain timeout and an unwritable journal path fail at startup, good values
// land in the config, and the journal probe creates the file without
// touching existing contents.
func TestServiceConfigDurabilityFlags(t *testing.T) {
	if _, err := buildConfig([]string{"-drain-timeout", "-1"}); err == nil {
		t.Error("negative -drain-timeout accepted")
	}
	if _, err := buildConfig([]string{"-journal", "/nonexistent-dir/jobs.journal"}); err == nil {
		t.Error("unwritable -journal accepted")
	}
	path := filepath.Join(t.TempDir(), "jobs.journal")
	if err := os.WriteFile(path, []byte("existing"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := buildConfig([]string{"-journal", path, "-drain-timeout", "2.5"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.journalPath != path || cfg.drainTimeout != 2500*time.Millisecond {
		t.Fatalf("config: %+v", cfg)
	}
	// The writability probe must not clobber what recovery will read.
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "existing" {
		t.Fatalf("probe altered journal: %q %v", data, err)
	}
	cfg2, err := buildConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.journalPath != "" || cfg2.drainTimeout != 10*time.Second {
		t.Fatalf("defaults: %+v", cfg2)
	}
}

// TestServiceHTTPRestartRecovery is the crash-restart walk over the HTTP
// surface: a journaling server completes keyed jobs, the process "dies" (the
// journal even grows a torn tail, as kill -9 mid-write leaves), a second
// server recovers from the same file — and the old status URLs still resolve,
// resubmitted keys dedup to the old ids, and the metrics report the recovery.
func TestServiceHTTPRestartRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	args := []string{"-scale", "512", "-journal", path, "-seed", "9"}

	cfg, err := buildConfig(args)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())

	resp, m := postJob(t, ts.URL, `{"tenant":"gold","app":"pagerank","graph":"social_network"}`, "req-a")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %v", resp.StatusCode, m)
	}
	idA := int(m["id"].(float64))
	// A duplicate POST (client retry) answers with the same id.
	if _, m := postJob(t, ts.URL, `{"tenant":"gold","app":"pagerank","graph":"social_network"}`, "req-a"); int(m["id"].(float64)) != idA {
		t.Fatalf("dup submit id %v, want %d", m["id"], idA)
	}
	// The same key with different work is a 409.
	if resp, _ := postJob(t, ts.URL, `{"tenant":"gold","app":"pagerank","graph":"wiki"}`, "req-a"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("key conflict: %d", resp.StatusCode)
	}
	first := waitDone(t, ts.URL, idA)
	if first.State != "done" {
		t.Fatalf("job: %+v", first)
	}
	ts.Close()
	srv.svc.Close()
	if srv.journal != nil {
		_ = srv.journal.Close()
	}

	// kill -9 leaves a torn tail; fake one so recovery exercises truncation.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{42, 42, 42}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Restart against the same journal (fresh appConfig: newServer owns its
	// copy of the service config).
	cfg2, err := buildConfig(args)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := newServer(cfg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.svc.Close()
	ts2 := httptest.NewServer(srv2.mux())
	defer ts2.Close()

	// The pre-crash status URL still resolves, same id, same terminal state
	// and charges.
	st := waitDone(t, ts2.URL, idA)
	if st.State != "done" || st.ExecSeconds != first.ExecSeconds || st.Key != "req-a" {
		t.Fatalf("recovered status: %+v, want %+v", st, first)
	}
	// Idempotent resubmission after the restart dedups to the recovered job.
	resp, m = postJob(t, ts2.URL, `{"tenant":"gold","app":"pagerank","graph":"social_network"}`, "req-a")
	if resp.StatusCode != http.StatusAccepted || int(m["id"].(float64)) != idA {
		t.Fatalf("post-restart dup: %d %v, want id %d", resp.StatusCode, m, idA)
	}
	// New work continues the id sequence past the recovered records.
	resp, m = postJob(t, ts2.URL, `{"tenant":"gold","app":"bfs","graph":"wiki"}`, "req-b")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("new submit: %d %v", resp.StatusCode, m)
	}
	if idB := int(m["id"].(float64)); idB <= idA {
		t.Fatalf("post-restart id %d not past recovered id %d", idB, idA)
	}
	// Metrics expose the recovery and journal counters.
	mresp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	body := string(raw)
	for _, want := range []string{
		"proxygraph_jobs_recovered_done 1",
		"proxygraph_journal_appends",
		"proxygraph_degraded 0",
		"proxygraph_jobs_deduped 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// /healthz is healthy — the torn tail was recovered, not fatal.
	hresp, err := http.Get(ts2.URL + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after recovery: %v %v", hresp.StatusCode, err)
	}
	hresp.Body.Close()
}

// TestServiceHTTPDegraded pins the degraded-mode HTTP surface: with a journal
// that fails every write, submissions get 503 + Retry-After, /healthz flips to
// 503 so the instance leaves LB rotation, reads keep serving, and /metrics
// raises the degraded gauge.
func TestServiceHTTPDegraded(t *testing.T) {
	cfg, err := buildConfig([]string{"-scale", "512"})
	if err != nil {
		t.Fatal(err)
	}
	fj, err := service.NewFaultJournal(service.NewMemJournal(), 5, service.JournalFaultSpec{
		EveryN: 1, Kinds: []service.JournalFaultKind{service.JournalSyncError},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.svc.Journal = fj
	srv, err := newServer(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.svc.Close()
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	resp, m := postJob(t, ts.URL, `{"tenant":"gold","app":"pagerank","graph":"social_network"}`, "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded submit: %d %v", resp.StatusCode, m)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 without Retry-After")
	} else if n, err := strconv.Atoi(ra); err != nil || n < 1 {
		t.Errorf("Retry-After %q not a positive integer", ra)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz: %v %v", hresp.StatusCode, err)
	}
	if hresp.Header.Get("Retry-After") == "" {
		t.Error("degraded healthz without Retry-After")
	}
	hresp.Body.Close()
	// Reads still serve while degraded.
	lresp, err := http.Get(ts.URL + "/jobs")
	if err != nil || lresp.StatusCode != http.StatusOK {
		t.Fatalf("degraded list: %v %v", lresp.StatusCode, err)
	}
	lresp.Body.Close()
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(raw), "proxygraph_degraded 1") {
		t.Error("metrics missing degraded gauge")
	}
}

// TestServiceHTTPRetryAfterOverload pins the backpressure hint on 429s: with
// one worker and a one-slot queue, a burst of submissions must see at least
// one overload rejection, and every 429 carries Retry-After.
func TestServiceHTTPRetryAfterOverload(t *testing.T) {
	cfg, err := buildConfig([]string{"-scale", "512", "-queue", "1", "-workers", "1", "-retries", "0"})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.svc.Close()
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	// A serial client cannot outrun the worker (a post's round trip is on the
	// order of the job itself), so each burst is concurrent: 16 submissions
	// land while at most one runs and one queues. Bound the rounds anyway.
	deadline := time.Now().Add(30 * time.Second)
	saw429 := false
	for !saw429 && time.Now().Before(deadline) {
		headers := make(chan http.Header, 16)
		var wg sync.WaitGroup
		for i := 0; i < cap(headers); i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, _ := postJob(t, ts.URL, `{"tenant":"gold","app":"pagerank","graph":"social_network"}`, "")
				if resp.StatusCode == http.StatusTooManyRequests {
					headers <- resp.Header
				}
			}()
		}
		wg.Wait()
		close(headers)
		for h := range headers {
			saw429 = true
			if ra := h.Get("Retry-After"); ra == "" {
				t.Fatal("429 without Retry-After")
			} else if n, err := strconv.Atoi(ra); err != nil || n < 1 {
				t.Fatalf("Retry-After %q not a positive integer", ra)
			}
		}
	}
	if !saw429 {
		t.Fatal("concurrent bursts against a 1-slot queue never saw a 429")
	}
}
