package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"proxygraph/internal/service"
)

// TestBuildConfigValidation pins the loud-failure contract: every malformed
// flag is rejected at startup, before sockets bind or graphs generate.
func TestBuildConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"bad port", []string{"-addr", ":notaport"}},
		{"port out of range", []string{"-addr", ":70000"}},
		{"no port separator", []string{"-addr", "localhost"}},
		{"negative queue bound", []string{"-queue", "-1"}},
		{"negative tenant queue", []string{"-tenant-queue", "-3"}},
		{"negative retries", []string{"-retries", "-1"}},
		{"negative workers", []string{"-workers", "-2"}},
		{"negative backoff", []string{"-base-backoff", "-0.5"}},
		{"zero scale", []string{"-scale", "0"}},
		{"bad cluster", []string{"-cluster", "xeon:four:2.5"}},
		{"bad tenant entry", []string{"-tenants", "gold"}},
		{"bad tenant priority", []string{"-tenants", "gold:high"}},
		{"bad tenant budget", []string{"-tenants", "gold:2:-5"}},
		{"duplicate tenants", []string{"-tenants", "a:1,a:2"}},
		{"unwritable trace sink", []string{"-trace-out", "/nonexistent-dir/trace.json"}},
	}
	for _, tc := range cases {
		if _, err := buildConfig(tc.args); err == nil {
			t.Errorf("%s: accepted %v", tc.name, tc.args)
		}
	}
}

func TestBuildConfigDefaults(t *testing.T) {
	cfg, err := buildConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":8080" || cfg.scale != 256 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if len(cfg.svc.Tenants) != 3 || cfg.svc.Tenants[0].Name != "gold" || cfg.svc.Tenants[0].Priority != 2 {
		t.Fatalf("tenants: %+v", cfg.svc.Tenants)
	}
	if cfg.svc.Cluster == nil || len(cfg.svc.Cluster.Machines) != 2 {
		t.Fatal("default cluster not built")
	}
}

func TestParseTenantsBudgets(t *testing.T) {
	ts, err := parseTenants("gold:2,silver:1:120.5,bronze:0")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 || ts[1].Budget.SimSeconds != 120.5 || ts[0].Budget.SimSeconds != 0 {
		t.Fatalf("parsed: %+v", ts)
	}
}

// TestServeHTTP drives the full HTTP surface against a live service: submit,
// status, list, tenants, healthz and a real Prometheus metrics endpoint.
func TestServeHTTP(t *testing.T) {
	cfg, err := buildConfig([]string{
		"-scale", "512", "-queue", "16", "-retries", "1",
		"-tenants", "gold:2,bronze:0:0.000001", // bronze: near-zero budget
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.svc.Close()
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	post := func(body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		return resp, m
	}

	// Health first.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	// Bad submissions.
	if resp, _ := post(`{"tenant":"gold","app":"nope","graph":"social_network"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown app: %d", resp.StatusCode)
	}
	if resp, _ := post(`{"tenant":"gold","app":"pagerank","graph":"nope"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown graph: %d", resp.StatusCode)
	}

	// A good submission is accepted with an id.
	resp, m := post(`{"tenant":"gold","app":"pagerank","graph":"social_network"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %v", resp.StatusCode, m)
	}
	id := int(m["id"].(float64))

	// Wait for it to finish, then check status over HTTP.
	deadline := time.Now().Add(30 * time.Second)
	var st service.JobStatus
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + strconv.Itoa(id))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == "done" || st.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != "done" || st.ExecSeconds <= 0 {
		t.Fatalf("status: %+v", st)
	}

	// Budget: bronze has an effectively zero budget — once it completes one
	// job its spend crosses the cap and later submissions are 403s.
	resp, m = post(`{"tenant":"bronze","app":"pagerank","graph":"social_network"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bronze first submit: %d %v", resp.StatusCode, m)
	}
	bronzeID := int(m["id"].(float64))
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + strconv.Itoa(bronzeID))
		if err != nil {
			t.Fatal(err)
		}
		_ = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.State == "done" || st.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("bronze job stuck")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if resp, _ := post(`{"tenant":"bronze","app":"pagerank","graph":"social_network"}`); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("over-budget submit: %d", resp.StatusCode)
	}

	// Unknown job id is a 404; bad id a 400.
	if resp, err := http.Get(ts.URL + "/jobs/99999"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: %v %v", resp.StatusCode, err)
	}
	if resp, err := http.Get(ts.URL + "/jobs/abc"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id: %v %v", resp.StatusCode, err)
	}

	// List and tenant filter.
	var list []service.JobStatus
	resp, err = http.Get(ts.URL + "/jobs?tenant=gold")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].Tenant != "gold" {
		t.Fatalf("gold list: %+v", list)
	}

	// Tenants endpoint reports bronze's spend.
	var usage []service.TenantUsage
	resp, err = http.Get(ts.URL + "/tenants")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&usage); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	spent := false
	for _, u := range usage {
		if u.Tenant.Name == "bronze" && u.SpentSeconds > 0 {
			spent = true
		}
	}
	if !spent {
		t.Fatalf("bronze spend missing: %+v", usage)
	}

	// Metrics: real Prometheus exposition with both observer-fed series and
	// the point-in-time cache/service gauges.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	body := string(raw)
	for _, want := range []string{
		"proxygraph_admissions_total",
		"proxygraph_jobs_completed",
		"proxygraph_placement_cache_hits",
		"# TYPE",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

