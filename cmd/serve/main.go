// Command serve exposes the multi-tenant job service over HTTP: clients
// submit graph-processing jobs against a simulated heterogeneous cluster and
// observe admission verdicts, retries, shedding and budgets — the control
// plane of a production deployment, backed by the same deterministic engines
// every experiment uses.
//
// Endpoints:
//
//	POST /jobs            {"tenant","app","graph"}        -> {"id": 7}
//	GET  /jobs/7                                          -> job status JSON
//	GET  /jobs?tenant=x                                   -> job list JSON
//	GET  /tenants                                         -> per-tenant usage
//	GET  /healthz                                         -> 200 "ok"
//	GET  /metrics                                         -> Prometheus text
//
// Usage:
//
//	serve -addr :8080 -cluster xeon:4:2.5,xeon:12:2.5 -scale 256 \
//	      -tenants gold:2,silver:1:120,bronze:0 -queue 32 -retries 3 \
//	      -journal /var/lib/proxygraph/jobs.journal -drain-timeout 10
//
// With -journal, every control-plane transition is written ahead to a
// checksummed append-only log and a restart recovers the previous
// incarnation's jobs, ids and tenant budgets (DESIGN.md §8); POST /jobs
// honours an Idempotency-Key header so resubmissions after a crash or client
// timeout never run the same work twice. SIGTERM/SIGINT drains in-flight
// jobs for -drain-timeout seconds before canceling what remains.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"proxygraph/internal/cliutil"
	"proxygraph/internal/gen"
	"proxygraph/internal/graph"
	"proxygraph/internal/rng"
	"proxygraph/internal/service"
	"proxygraph/internal/trace"
	"proxygraph/internal/workload"

	"proxygraph/internal/apps"
)

// appConfig is everything main needs, assembled by buildConfig so flag
// validation is testable without binding sockets or generating graphs.
type appConfig struct {
	addr         string
	scale        int
	seed         uint64
	traceOut     string
	journalPath  string
	drainTimeout time.Duration
	svc          service.Config
}

// buildConfig parses and validates the command line. Invalid input — a bad
// listen address, a negative queue bound, an unwritable trace sink, a
// malformed tenant spec — fails here, loudly, before any resource is built.
func buildConfig(args []string) (*appConfig, error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8080", "HTTP listen address")
		clusterSpec = fs.String("cluster", "xeon:4:2.5,xeon:12:2.5", "machines: catalog names or name:cores:freqGHz")
		scale       = fs.Int("scale", 256, "graph spec scale divisor")
		seed        = fs.Uint64("seed", 42, "service seed (backoff jitter, graph generation)")
		tenants     = fs.String("tenants", "gold:2,silver:1,bronze:0", "tenant spec: name:priority[:budget-sim-seconds]")
		queue       = fs.Int("queue", 64, "global queue bound")
		tenantQueue = fs.Int("tenant-queue", 0, "per-tenant queue bound (0 = global bound)")
		retries     = fs.Int("retries", 3, "retries per job")
		baseBackoff = fs.Float64("base-backoff", 0.05, "base retry backoff seconds")
		maxBackoff  = fs.Float64("max-backoff", 1, "backoff cap seconds")
		breaker     = fs.Int("breaker", 5, "circuit-breaker threshold in consecutive failures (0 disables)")
		cooldown    = fs.Float64("breaker-cooldown", 5, "breaker open interval seconds")
		workers     = fs.Int("workers", 4, "worker pool size")
		cacheSize   = fs.Int("cache-entries", 64, "placement cache entry bound (0 = unbounded)")
		cacheBytes  = fs.Int64("cache-bytes", 0, "placement cache approximate byte bound (0 = unbounded)")
		charge      = fs.Bool("charge-ingress", true, "charge cold ingress makespans to jobs")
		traceOut    = fs.String("trace-out", "", "write a Chrome trace-event JSON here on shutdown")
		journal     = fs.String("journal", "", "write-ahead job journal path; enables crash-restart recovery (empty = in-memory only)")
		drain       = fs.Float64("drain-timeout", 10, "seconds to let queued/running jobs finish on SIGTERM/SIGINT before canceling them")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	host, port, err := net.SplitHostPort(*addr)
	if err != nil {
		return nil, fmt.Errorf("serve: bad -addr %q: %v", *addr, err)
	}
	if p, err := strconv.Atoi(port); err != nil || p < 0 || p > 65535 {
		return nil, fmt.Errorf("serve: bad port %q in -addr", port)
	}
	_ = host
	if *scale < 1 {
		return nil, fmt.Errorf("serve: -scale must be positive, got %d", *scale)
	}
	cl, err := cliutil.ParseCluster(*clusterSpec)
	if err != nil {
		return nil, err
	}
	ts, err := parseTenants(*tenants)
	if err != nil {
		return nil, err
	}
	if *traceOut != "" {
		// Validate the sink now: discovering an unwritable path hours into a
		// run would lose the whole trace.
		f, err := os.OpenFile(*traceOut, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("serve: trace sink: %v", err)
		}
		f.Close()
	}
	if *drain < 0 {
		return nil, fmt.Errorf("serve: -drain-timeout must be non-negative, got %g", *drain)
	}
	if *journal != "" {
		// Validate writability without touching the contents — recovery and
		// truncation happen in newServer, this only catches an unwritable
		// path before the process commits to serving.
		f, err := os.OpenFile(*journal, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("serve: journal: %v", err)
		}
		f.Close()
	}

	cfg := &appConfig{
		addr:         *addr,
		scale:        *scale,
		seed:         *seed,
		traceOut:     *traceOut,
		journalPath:  *journal,
		drainTimeout: time.Duration(*drain * float64(time.Second)),
		svc: service.Config{
			Cluster:          cl,
			Cache:            workload.NewBoundedPlacementCache(*cacheSize, *cacheBytes),
			ChargeIngress:    *charge,
			Tenants:          ts,
			QueueBound:       *queue,
			TenantQueueBound: *tenantQueue,
			MaxRetries:       *retries,
			BaseBackoff:      *baseBackoff,
			MaxBackoff:       *maxBackoff,
			BreakerThreshold: *breaker,
			BreakerCooldown:  *cooldown,
			Workers:          *workers,
			Seed:             *seed,
		},
	}
	// Surface service-level validation (negative bounds and durations, tenant
	// spec problems) at startup rather than from New deep in main.
	if err := cfg.svc.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// parseTenants parses "name:priority[:budget-sim-seconds]" entries.
func parseTenants(spec string) ([]service.Tenant, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []service.Tenant
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) < 2 || len(parts) > 3 || parts[0] == "" {
			return nil, fmt.Errorf("serve: bad tenant entry %q (want name:priority[:budget])", entry)
		}
		prio, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("serve: bad priority in %q: %v", entry, err)
		}
		t := service.Tenant{Name: parts[0], Priority: prio}
		if len(parts) == 3 {
			budget, err := strconv.ParseFloat(parts[2], 64)
			if err != nil || budget < 0 {
				return nil, fmt.Errorf("serve: bad budget in %q", entry)
			}
			t.Budget.SimSeconds = budget
		}
		out = append(out, t)
	}
	return out, nil
}

// server binds the service to HTTP handlers.
type server struct {
	svc     *service.Service
	reg     *trace.Registry
	graphs  map[string]*graph.Graph
	seeds   map[string]uint64
	journal service.Journal // nil without -journal
	// retryAfterBreaker is the Retry-After hint for breaker rejections.
	retryAfterBreaker int
}

// newServer generates the Table II graph catalog at 1/scale and starts the
// service with an Observer folding every event into the registry. With a
// journal path configured it first recovers the previous incarnation's state:
// terminal jobs reappear with their results and budget charges, in-flight
// jobs re-enter the queue, and new job ids continue the journal sequence so
// status URLs stay valid across the restart.
func newServer(cfg *appConfig, extra trace.Collector) (*server, error) {
	reg := trace.NewRegistry()
	cfg.svc.Trace = trace.Multi(trace.NewObserver(reg), extra)

	graphs := make(map[string]*graph.Graph)
	seeds := make(map[string]uint64)
	for i, spec := range gen.RealGraphs() {
		g, err := gen.Generate(spec.Scale(cfg.scale), rng.Hash2(cfg.seed, uint64(i)))
		if err != nil {
			return nil, err
		}
		graphs[spec.Name] = g
		seeds[spec.Name] = rng.Hash2(cfg.seed^0x696e67, uint64(i))
	}

	var journal service.Journal
	if cfg.journalPath != "" {
		fj, rec, err := service.OpenFileJournal(cfg.journalPath)
		if err != nil {
			return nil, err
		}
		if rec.Err != nil {
			// A torn tail is the expected artifact of kill -9; it has already
			// been truncated away. Surface it for the operator's log.
			fmt.Fprintf(os.Stderr, "serve: journal tail discarded: %v\n", rec.Err)
		}
		journal = fj
		cfg.svc.Journal = fj
		cfg.svc.Recovery = rec
		cfg.svc.Resolve = func(appName, graphName string, seed uint64) (workload.Job, error) {
			a, err := apps.ByName(appName)
			if err != nil {
				return workload.Job{}, err
			}
			g, ok := graphs[graphName]
			if !ok {
				return workload.Job{}, fmt.Errorf("unknown graph %q", graphName)
			}
			return workload.Job{App: a, Graph: g, Seed: seed}, nil
		}
	}

	svc, err := service.New(cfg.svc)
	if err != nil {
		if journal != nil {
			journal.Close()
		}
		return nil, err
	}
	retryAfter := 1
	if cfg.svc.BreakerCooldown > float64(retryAfter) {
		retryAfter = int(cfg.svc.BreakerCooldown + 0.999)
	}
	return &server{svc: svc, reg: reg, graphs: graphs, seeds: seeds,
		journal: journal, retryAfterBreaker: retryAfter}, nil
}

// submitRequest is the POST /jobs payload.
type submitRequest struct {
	Tenant string `json:"tenant"`
	App    string `json:"app"`
	Graph  string `json:"graph"`
	// DeadlineSeconds, when positive, bounds the job's total lifetime: if it
	// has not completed within that window it is shed or failed.
	DeadlineSeconds float64 `json:"deadline_seconds"`
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	app, err := apps.ByName(req.App)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	g, ok := s.graphs[req.Graph]
	if !ok {
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown graph %q", req.Graph))
		return
	}
	// The job outlives the HTTP request — submission is asynchronous — so its
	// lifetime context is detached from r.Context(). A requested deadline
	// becomes a timeout; its cancel fires when the timer does.
	ctx := context.Background()
	if req.DeadlineSeconds > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineSeconds*float64(time.Second)))
		// The context must stay live for the job's whole run; releasing the
		// timer early would sever the deadline. It self-releases on expiry.
		_ = cancel
	}
	// An Idempotency-Key header makes the POST safe to retry: a duplicate
	// submission (client timeout, proxy retry, resubmission after a crash)
	// returns the original job's id instead of running the work twice.
	key := r.Header.Get("Idempotency-Key")
	id, err := s.svc.SubmitKey(ctx, req.Tenant, key, workload.Job{App: app, Graph: g, Seed: s.seeds[req.Graph]})
	if err != nil {
		code := admissionStatus(err)
		// Backpressure responses tell shed clients when to come back: the
		// breaker cooldown for breaker rejections, a nominal second for
		// queue-bound and degraded/closed rejections.
		switch code {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			retry := 1
			if errors.Is(err, service.ErrCircuitOpen) {
				retry = s.retryAfterBreaker
			}
			w.Header().Set("Retry-After", strconv.Itoa(retry))
		}
		httpError(w, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]int{"id": id})
}

// admissionStatus maps the typed admission errors onto HTTP semantics:
// overload and an open breaker are backpressure (429), an exhausted budget is
// a hard client-side stop (403), key reuse for different work is a conflict
// (409), and a closed or degraded service is 503.
func admissionStatus(err error) int {
	switch {
	case errors.Is(err, service.ErrOverloaded), errors.Is(err, service.ErrCircuitOpen):
		return http.StatusTooManyRequests
	case errors.Is(err, service.ErrBudgetExhausted):
		return http.StatusForbidden
	case errors.Is(err, service.ErrKeyConflict):
		return http.StatusConflict
	case errors.Is(err, service.ErrClosed), errors.Is(err, service.ErrDegraded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		s.handleSubmit(w, r)
		return
	}
	if id := strings.TrimPrefix(r.URL.Path, "/jobs/"); id != "" && id != r.URL.Path {
		n, err := strconv.Atoi(id)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", id))
			return
		}
		st, err := s.svc.Status(n)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
		return
	}
	writeJSON(w, http.StatusOK, s.svc.List(r.URL.Query().Get("tenant")))
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// Fold the point-in-time service state into gauges alongside the
	// event-driven series the Observer maintains.
	c := s.svc.Counters()
	s.reg.Gauge("proxygraph_jobs_completed", "jobs completed").Set(float64(c.Completed))
	s.reg.Gauge("proxygraph_jobs_failed", "jobs terminally failed").Set(float64(c.Failed))
	s.reg.Gauge("proxygraph_jobs_submitted", "submissions").Set(float64(c.Submitted))
	s.reg.Gauge("proxygraph_jobs_deduped", "submissions answered by idempotency key").Set(float64(c.Deduped))
	s.reg.Gauge("proxygraph_journal_appends", "journal records made durable").Set(float64(c.JournalAppends))
	s.reg.Gauge("proxygraph_journal_errors", "journal write failures").Set(float64(c.JournalErrors))
	s.reg.Gauge("proxygraph_jobs_recovered_done", "terminal jobs rebuilt from the journal at startup").Set(float64(c.RecoveredDone))
	s.reg.Gauge("proxygraph_jobs_recovered_requeued", "in-flight jobs re-enqueued from the journal at startup").Set(float64(c.RecoveredRequeued))
	degraded, _ := s.svc.Degraded()
	degVal := 0.0
	if degraded {
		degVal = 1
	}
	s.reg.Gauge("proxygraph_degraded", "1 while the job service is in degraded mode.").Set(degVal)
	if stats := s.svc.CacheStats(); stats != nil {
		s.reg.Gauge("proxygraph_placement_cache_hits", "placement cache hits").Set(float64(stats.Hits))
		s.reg.Gauge("proxygraph_placement_cache_misses", "placement cache misses").Set(float64(stats.Misses))
		s.reg.Gauge("proxygraph_placement_cache_evictions", "placement cache evictions").Set(float64(stats.Evictions))
		s.reg.Gauge("proxygraph_placement_cache_entries", "placement cache entries").Set(float64(stats.Entries))
		s.reg.Gauge("proxygraph_placement_cache_bytes", "placement cache approximate bytes").Set(float64(stats.Bytes))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.reg.WritePrometheus(w); err != nil {
		httpError(w, http.StatusInternalServerError, err)
	}
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJobs)
	mux.HandleFunc("/tenants", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.svc.Usage())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if !s.svc.Healthy() {
			httpError(w, http.StatusServiceUnavailable, errors.New("closed"))
			return
		}
		if degraded, err := s.svc.Degraded(); degraded {
			// Degraded mode sheds new work; taking the instance out of LB
			// rotation is exactly what a 503 here does. Reads still serve.
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, fmt.Errorf("degraded: %v", err))
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func main() {
	cfg, err := buildConfig(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var rec *trace.Recorder
	var collector trace.Collector
	if cfg.traceOut != "" {
		rec = trace.NewRecorder()
		collector = rec
	}
	srv, err := newServer(cfg, collector)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	httpSrv := &http.Server{Addr: cfg.addr, Handler: srv.mux()}
	go func() {
		c := srv.svc.Counters()
		fmt.Printf("serving on %s (%d graphs, %d tenants, recovered %d done + %d requeued)\n",
			cfg.addr, len(srv.graphs), len(cfg.svc.Tenants), c.RecoveredDone, c.RecoveredRequeued)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop

	// Graceful shutdown: stop accepting HTTP, then give queued and running
	// jobs -drain-timeout to finish. Queued work still pending at the
	// deadline is canceled by Close — and journaled as canceled, so the next
	// incarnation reports those jobs canceled instead of re-running them
	// (unlike a crash, where in-flight work is re-enqueued at recovery).
	fmt.Println("shutting down: draining jobs")
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	if err := srv.svc.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "serve: drain timed out after %s, canceling pending jobs\n", cfg.drainTimeout)
	}
	srv.svc.Close()
	if srv.journal != nil {
		_ = srv.journal.Close()
	}
	if rec != nil {
		f, err := os.Create(cfg.traceOut)
		if err == nil {
			_ = trace.WriteChromeTrace(f, rec.Events)
			f.Close()
			fmt.Printf("wrote trace to %s\n", cfg.traceOut)
		}
	}
}
