// Command graphstats summarizes a graph file: size, density, fitted power-law
// exponent, degree extremes and a log-binned degree histogram — everything
// the proxy methodology needs to know about an input before picking or
// extending the proxy set.
//
// Usage:
//
//	graphstats -file social.bin
//	graphstats -file g.txt -histogram
package main

import (
	"flag"
	"fmt"
	"os"

	"proxygraph/internal/graph"
	"proxygraph/internal/metrics"
	"proxygraph/internal/powerlaw"
)

func main() {
	var (
		file      = flag.String("file", "", "graph file (.txt edge list or .bin)")
		histogram = flag.Bool("histogram", false, "print the log-binned out-degree histogram")
	)
	flag.Parse()
	if *file == "" {
		fatal(fmt.Errorf("need -file"))
	}
	g, err := graph.ReadFile(*file)
	if err != nil {
		fatal(err)
	}
	if err := g.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "graphstats: warning:", err)
	}

	fmt.Printf("file            %s\n", *file)
	fmt.Printf("vertices        %d\n", g.NumVertices)
	fmt.Printf("edges           %d\n", g.NumEdges())
	fmt.Printf("avg degree      %.4f\n", g.AvgDegree())
	fmt.Printf("max degree      %d\n", g.MaxDegree())
	fmt.Printf("est. footprint  %.1f MB (text)\n", float64(g.FootprintBytes())/(1<<20))
	if g.Weights != nil {
		fmt.Printf("weighted        yes (%d weights)\n", len(g.Weights))
	}

	alpha, err := powerlaw.FitAlphaForGraph(int64(g.NumVertices), int64(g.NumEdges()))
	if err != nil {
		fmt.Printf("alpha (moment)  (fit failed: %v)\n", err)
	} else {
		fmt.Printf("alpha (moment)  %.4f", alpha)
		if alpha >= 1.9 && alpha <= 2.4 {
			fmt.Printf("  (inside the default proxy band 1.9..2.4)\n")
		} else {
			fmt.Printf("  (OUTSIDE the default proxy band: extend the proxy set)\n")
		}
	}
	if mle, err := powerlaw.FitAlphaMLE(g.OutDegrees(), 1); err != nil {
		fmt.Printf("alpha (MLE)     (fit failed: %v)\n", err)
	} else {
		fmt.Printf("alpha (MLE)     %.4f  (Clauset-style, from the full degree sequence)\n", mle)
	}

	if *histogram {
		deg, count := graph.DegreeHistogram(g.OutDegrees())
		t := metrics.NewTable("out-degree histogram (log buckets)", "degree", "vertices", "bar")
		maxCount := int64(0)
		type bucket struct {
			lo, hi int
			total  int64
		}
		var buckets []bucket
		lo, idx := 1, 0
		for lo <= g.MaxDegree() {
			hi := lo * 2
			total := int64(0)
			for idx < len(deg) && deg[idx] < hi {
				total += count[idx]
				idx++
			}
			if total > 0 {
				buckets = append(buckets, bucket{lo, hi - 1, total})
				if total > maxCount {
					maxCount = total
				}
			}
			lo = hi
		}
		for _, b := range buckets {
			bar := ""
			if maxCount > 0 {
				for i := int64(0); i < b.total*40/maxCount; i++ {
					bar += "#"
				}
			}
			label := fmt.Sprintf("%d-%d", b.lo, b.hi)
			if b.lo == b.hi {
				label = fmt.Sprint(b.lo)
			}
			t.AddRow(label, fmt.Sprint(b.total), bar)
		}
		fmt.Println()
		fmt.Print(t)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphstats:", err)
	os.Exit(1)
}
