// Command partition splits a graph across machines with one of the paper's
// five algorithms and reports the vertex-cut quality metrics: per-machine
// edge loads, replication factor (mirrors) and imbalance against the target
// shares.
//
// Usage:
//
//	partition -file g.txt -algo hybrid -weights 1,3.5
//	partition -file g.bin -algo grid -machines 4
package main

import (
	"flag"
	"fmt"
	"os"

	"proxygraph/internal/cliutil"
	"proxygraph/internal/graph"
	"proxygraph/internal/metrics"
	"proxygraph/internal/partition"
)

func main() {
	var (
		file     = flag.String("file", "", "graph file (.txt edge list or .bin)")
		algo     = flag.String("algo", "hybrid", "algorithm: random, oblivious, grid, hybrid, ginger")
		machines = flag.Int("machines", 2, "machine count (uniform shares)")
		weights  = flag.String("weights", "", "comma-separated CCR weights overriding -machines")
		seed     = flag.Uint64("seed", 42, "hashing seed")
	)
	flag.Parse()

	if *file == "" {
		fatal(fmt.Errorf("need -file"))
	}
	g, err := graph.ReadFile(*file)
	if err != nil {
		fatal(err)
	}
	p, err := partition.ByName(*algo)
	if err != nil {
		fatal(err)
	}
	shares, err := cliutil.ParseShares(*weights, *machines)
	if err != nil {
		fatal(err)
	}
	pl, err := partition.Apply(p, g, shares, *seed)
	if err != nil {
		fatal(err)
	}

	t := metrics.NewTable(fmt.Sprintf("%s over %d machines (|V|=%d |E|=%d)",
		p.Name(), len(shares), g.NumVertices, g.NumEdges()),
		"machine", "target share", "edges", "actual share")
	counts := pl.EdgeCounts()
	for i, c := range counts {
		t.AddRow(fmt.Sprint(i), metrics.Pct(shares[i]), fmt.Sprint(c),
			metrics.Pct(float64(c)/float64(g.NumEdges())))
	}
	t.AddNote("replication factor %.3f (avg mirrors per vertex)", pl.ReplicationFactor())
	t.AddNote("imbalance vs target %.3f (1.0 = perfect)", pl.Imbalance(shares))
	fmt.Print(t)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "partition:", err)
	os.Exit(1)
}
