// Command graphgen generates the paper's graphs — the synthetic power-law
// proxies of Algorithm 1 and the Table II real-world emulations — and writes
// them as SNAP-style text edge lists or the compact binary format.
//
// Usage:
//
//	graphgen -kind powerlaw -vertices 3200000 -alpha 1.95 -out proxy1.bin
//	graphgen -spec SyntheticGraph_two -scale 64 -out proxy2.txt
//	graphgen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"proxygraph/internal/gen"
	"proxygraph/internal/graph"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the Table II graph specs and exit")
		specName = flag.String("spec", "", "generate a named Table II spec")
		kind     = flag.String("kind", "powerlaw", "generator kind: powerlaw, amazon, citation, social, wiki, rmat")
		vertices = flag.Int64("vertices", 100000, "vertex count (custom spec)")
		edges    = flag.Int64("edges", 0, "target edge count (custom spec; 0 = natural density)")
		alpha    = flag.Float64("alpha", 0, "power-law exponent (0 = fit from vertices/edges)")
		scale    = flag.Int("scale", 1, "divide the spec's size by this factor")
		seed     = flag.Uint64("seed", 42, "generator seed")
		out      = flag.String("out", "", "output path (.bin for binary, otherwise text); empty = stats only")
	)
	flag.Parse()

	if *list {
		for _, s := range gen.TableII() {
			fmt.Printf("%-22s |V|=%-9d |E|=%-9d kind=%-9s alpha=%v\n",
				s.Name, s.Vertices, s.Edges, s.Kind, s.Alpha)
		}
		return
	}

	spec, err := resolveSpec(*specName, *kind, *vertices, *edges, *alpha)
	if err != nil {
		fatal(err)
	}
	spec = spec.Scale(*scale)

	g, err := gen.Generate(spec, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("generated %q: %d vertices, %d edges, avg degree %.2f, alpha %.3f, ~%.1fMB\n",
		g.Name, g.NumVertices, g.NumEdges(), g.AvgDegree(), g.Alpha,
		float64(g.FootprintBytes())/(1<<20))
	if *out != "" {
		if err := graph.WriteFile(*out, g); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func resolveSpec(name, kind string, vertices, edges int64, alpha float64) (gen.Spec, error) {
	if name != "" {
		for _, s := range gen.TableII() {
			if s.Name == name {
				return s, nil
			}
		}
		return gen.Spec{}, fmt.Errorf("unknown spec %q (try -list)", name)
	}
	var k gen.Kind
	switch kind {
	case "powerlaw":
		k = gen.KindPowerLaw
	case "amazon":
		k = gen.KindAmazon
	case "citation":
		k = gen.KindCitation
	case "social":
		k = gen.KindSocial
	case "wiki":
		k = gen.KindWiki
	case "rmat":
		k = gen.KindRMAT
	default:
		return gen.Spec{}, fmt.Errorf("unknown kind %q", kind)
	}
	return gen.Spec{Name: "custom-" + kind, Vertices: vertices, Edges: edges, Alpha: alpha, Kind: k}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
