package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// sample mimics go test -bench output across -cpu 1,4: unsuffixed names at
// one proc, -4 suffixes at four, sub-benchmark slashes, custom edges/s
// metrics, and surrounding noise lines.
const sample = `goos: linux
goarch: amd64
pkg: proxygraph/internal/engine
BenchmarkEngineGatherPageRank   	     100	  11025480 ns/op	  58067754 edges/s	  554408 B/op	      25 allocs/op
BenchmarkEngineGatherPageRank-4 	     120	   5500000 ns/op	 116000000 edges/s	  560000 B/op	      30 allocs/op
BenchmarkIngressRandom/shards8  	      79	  14790316 ns/op	 108195723 edges/s	 6408368 B/op	       5 allocs/op
BenchmarkIngressRandom/shards8-4	      80	   7000000 ns/op	 216000000 edges/s	 6410000 B/op	      12 allocs/op
PASS
ok  	proxygraph/internal/engine	12.3s
`

func TestParseBenchOutput(t *testing.T) {
	ms, err := parseBenchOutput(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("parsed %d measurements, want 4: %+v", len(ms), ms)
	}
	want := []measurement{
		{"BenchmarkEngineGatherPageRank", 1, 11025480, 58067754, 554408, 25},
		{"BenchmarkEngineGatherPageRank", 4, 5500000, 116000000, 560000, 30},
		{"BenchmarkIngressRandom/shards8", 1, 14790316, 108195723, 6408368, 5},
		{"BenchmarkIngressRandom/shards8", 4, 7000000, 216000000, 6410000, 12},
	}
	for i, w := range want {
		if ms[i] != w {
			t.Errorf("measurement %d = %+v, want %+v", i, ms[i], w)
		}
	}
}

func TestSplitProcs(t *testing.T) {
	cases := []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkX", "BenchmarkX", 1},
		{"BenchmarkX-8", "BenchmarkX", 8},
		{"BenchmarkX/sub-case", "BenchmarkX/sub-case", 1}, // non-numeric tail
		{"BenchmarkX/sub-case-16", "BenchmarkX/sub-case", 16},
	}
	for _, c := range cases {
		name, procs := splitProcs(c.in)
		if name != c.name || procs != c.procs {
			t.Errorf("splitProcs(%q) = (%q, %d), want (%q, %d)", c.in, name, procs, c.name, c.procs)
		}
	}
}

func TestBuildMatrixSpeedups(t *testing.T) {
	ms, err := parseBenchOutput(sample)
	if err != nil {
		t.Fatal(err)
	}
	matrix := buildMatrix(ms)
	pr := matrix["BenchmarkEngineGatherPageRank"]
	if pr == nil {
		t.Fatal("pagerank row missing")
	}
	if got := pr["1"].SpeedupVs1; got != 1 {
		t.Errorf("1-core speedup = %v, want 1", got)
	}
	if got, want := pr["4"].SpeedupVs1, 116000000.0/58067754.0; got != want {
		t.Errorf("4-core speedup = %v, want %v", got, want)
	}
}

func TestBuildMatrixWithout1Core(t *testing.T) {
	matrix := buildMatrix([]measurement{{Name: "B", Procs: 4, EdgesPerS: 10}})
	if got := matrix["B"]["4"].SpeedupVs1; got != 0 {
		t.Errorf("speedup without a 1-core base = %v, want 0", got)
	}
}

func TestAppendEntryPreservesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	// Seed with a hand-written flat-format entry.
	seed := `[
  { "date": "2026-08-05", "note": "seed", "host": "x", "benchmarks": { "B": { "ns_per_op": 1 } } }
]
`
	if err := os.WriteFile(path, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	e := entry{
		Date: "2026-08-08", Note: "matrix", Host: "y", CPUs: []int{1, 4},
		Matrix: map[string]map[string]cell{"B": {"1": {NsPerOp: 2, EdgesPerS: 5, SpeedupVs1: 1}}},
	}
	if err := appendEntry(path, e); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var entries []map[string]any
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("appended file is not a JSON array: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	if entries[0]["note"] != "seed" || entries[1]["note"] != "matrix" {
		t.Fatalf("entries out of order or mangled: %v", entries)
	}
	if _, ok := entries[1]["matrix"].(map[string]any); !ok {
		t.Fatalf("matrix entry missing matrix object: %v", entries[1])
	}
}

func TestParseCPUs(t *testing.T) {
	got, err := parseCPUs("1, 2,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("parseCPUs = %v", got)
	}
	if _, err := parseCPUs("1,x"); err == nil {
		t.Error("bad cpu list accepted")
	}
}
