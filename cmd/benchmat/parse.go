package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// measurement is one parsed `go test -bench` result line.
type measurement struct {
	Name        string // benchmark name without the -procs suffix
	Procs       int    // GOMAXPROCS the line ran at (1 when unsuffixed)
	NsPerOp     float64
	EdgesPerS   float64
	BytesPerOp  float64
	AllocsPerOp float64
}

// parseBenchOutput extracts benchmark lines from go test output. Lines look
// like
//
//	BenchmarkEngineGatherPageRank-4  100  11025480 ns/op  58067754 edges/s  554408 B/op  25 allocs/op
//
// with the -4 GOMAXPROCS suffix absent when procs == 1 (the testing package
// only appends it for procs != 1), and value/unit pairs in any order after
// the iteration count.
func parseBenchOutput(out string) ([]measurement, error) {
	var ms []measurement
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue // "Benchmark... \t iterations" fragments or headers
		}
		name, procs := splitProcs(fields[0])
		m := measurement{Name: name, Procs: procs}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not a result line (e.g. a benchmark that printed)
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
			case "edges/s":
				m.EdgesPerS = v
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		ms = append(ms, m)
	}
	return ms, nil
}

// splitProcs strips the trailing -N GOMAXPROCS suffix from a benchmark name.
// Only an all-digit tail counts: a name with no suffix ran at procs == 1.
func splitProcs(name string) (string, int) {
	idx := strings.LastIndex(name, "-")
	if idx < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[idx+1:])
	if err != nil || n < 1 {
		return name, 1
	}
	return name[:idx], n
}

// cell is one (benchmark, GOMAXPROCS) point of the scaling matrix.
type cell struct {
	NsPerOp     float64 `json:"ns_per_op"`
	EdgesPerS   float64 `json:"edges_per_s"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// SpeedupVs1 is this point's edges/s over the same benchmark's 1-core
	// edges/s; 0 when no 1-core measurement exists.
	SpeedupVs1 float64 `json:"speedup_vs_1cpu,omitempty"`
}

// entry is one appended element of BENCH_ENGINE.json / BENCH_INGRESS.json.
// Earlier hand-written entries use a flat "benchmarks" object; matrix entries
// use "matrix" keyed benchmark → GOMAXPROCS → cell.
type entry struct {
	Date   string                     `json:"date"`
	Note   string                     `json:"note"`
	Host   string                     `json:"host"`
	CPUs   []int                      `json:"cpus"`
	Matrix map[string]map[string]cell `json:"matrix"`
}

// buildMatrix folds measurements into the per-benchmark GOMAXPROCS table and
// derives each point's speedup against the same benchmark's 1-core run.
func buildMatrix(ms []measurement) map[string]map[string]cell {
	matrix := make(map[string]map[string]cell)
	base := make(map[string]float64)
	for _, m := range ms {
		if m.Procs == 1 {
			base[m.Name] = m.EdgesPerS
		}
	}
	for _, m := range ms {
		row := matrix[m.Name]
		if row == nil {
			row = make(map[string]cell)
			matrix[m.Name] = row
		}
		c := cell{
			NsPerOp:     m.NsPerOp,
			EdgesPerS:   m.EdgesPerS,
			BytesPerOp:  m.BytesPerOp,
			AllocsPerOp: m.AllocsPerOp,
		}
		if b := base[m.Name]; b > 0 {
			c.SpeedupVs1 = m.EdgesPerS / b
		}
		row[strconv.Itoa(m.Procs)] = c
	}
	return matrix
}

// appendEntry appends e to the JSON array in path, creating the file when
// absent. The existing entries are kept verbatim (they are raw messages, so
// hand-written flat entries survive untouched).
func appendEntry(path string, e entry) error {
	var entries []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &entries); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	raw, err := json.MarshalIndent(e, "  ", "  ")
	if err != nil {
		return err
	}
	entries = append(entries, raw)
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
