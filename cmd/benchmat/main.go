// Command benchmat runs the multicore scaling matrix: the engine and ingress
// micro-benchmarks swept over a GOMAXPROCS list (go test -cpu), with edges/s
// and speedup-vs-1-core derived per benchmark, appended as host- and
// date-stamped entries to BENCH_ENGINE.json and BENCH_INGRESS.json.
//
// Usage:
//
//	benchmat                            # full matrix at -cpu 1,2,4,8
//	benchmat -cpus 1,4 -benchtime 1x -check   # CI smoke: run once, parse, no JSON
//	benchmat -suite ingress -note "after window batching"
//
// Run from the repository root (the Makefile targets bench-scaling and
// bench-smoke do).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type suite struct {
	name  string
	pkg   string
	regex string
	out   string
}

var suites = []suite{
	{"engine", "./internal/engine", "BenchmarkEngineGather|BenchmarkEngineParallel|BenchmarkEngineClusterBFS", "BENCH_ENGINE.json"},
	{"ingress", "./internal/partition", "BenchmarkIngress", "BENCH_INGRESS.json"},
}

func main() {
	cpus := flag.String("cpus", "1,2,4,8", "comma-separated GOMAXPROCS values (go test -cpu)")
	benchtime := flag.String("benchtime", "", "go test -benchtime value (empty = default)")
	note := flag.String("note", "", "free-form note stored with the JSON entry")
	which := flag.String("suite", "all", "engine, ingress, or all")
	check := flag.Bool("check", false, "verify the matrix runs and parses; do not write JSON")
	flag.Parse()

	cpuList, err := parseCPUs(*cpus)
	if err != nil {
		fatal(err)
	}
	for _, s := range suites {
		if *which != "all" && *which != s.name {
			continue
		}
		args := []string{"test", "-run", "^$", "-bench", s.regex, "-benchmem", "-cpu", *cpus}
		if *benchtime != "" {
			args = append(args, "-benchtime", *benchtime)
		}
		args = append(args, s.pkg)
		fmt.Fprintf(os.Stderr, "benchmat: go %s\n", strings.Join(args, " "))
		cmd := exec.Command("go", args...)
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fatal(fmt.Errorf("suite %s: %w", s.name, err))
		}
		ms, err := parseBenchOutput(buf.String())
		if err != nil {
			fatal(fmt.Errorf("suite %s: %w", s.name, err))
		}
		if len(ms) == 0 {
			fatal(fmt.Errorf("suite %s: no benchmark lines in go test output", s.name))
		}
		matrix := buildMatrix(ms)
		printMatrix(os.Stdout, s.name, cpuList, matrix)
		if *check {
			continue
		}
		e := entry{
			Date:   time.Now().Format("2006-01-02"),
			Note:   *note,
			Host:   hostString(),
			CPUs:   cpuList,
			Matrix: matrix,
		}
		if err := appendEntry(s.out, e); err != nil {
			fatal(fmt.Errorf("suite %s: %w", s.name, err))
		}
		fmt.Fprintf(os.Stderr, "benchmat: appended matrix entry to %s\n", s.out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchmat:", err)
	os.Exit(1)
}

func parseCPUs(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -cpus entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// hostString labels the JSON entry with the CPU model (when /proc exposes
// one) and the machine's core count, matching the hand-written entries.
func hostString() string {
	model := "unknown CPU"
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, value, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(name) == "model name" {
				model = strings.TrimSpace(value)
				break
			}
		}
	}
	return fmt.Sprintf("%s, NumCPU=%d", model, runtime.NumCPU())
}

func printMatrix(w *os.File, name string, cpus []int, matrix map[string]map[string]cell) {
	fmt.Fprintf(w, "\n%s matrix (edges/s by GOMAXPROCS, speedup vs 1 core):\n", name)
	names := make([]string, 0, len(matrix))
	for n := range matrix {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		fmt.Fprintf(w, "  %s\n", n)
		for _, c := range cpus {
			cell, ok := matrix[n][strconv.Itoa(c)]
			if !ok {
				continue
			}
			line := fmt.Sprintf("    cpu=%d  %12.0f edges/s", c, cell.EdgesPerS)
			if cell.SpeedupVs1 != 0 {
				line += fmt.Sprintf("  %5.2fx", cell.SpeedupVs1)
			}
			fmt.Fprintln(w, line)
		}
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
