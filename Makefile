# Developer entry points. The repo needs only the Go toolchain.

.PHONY: build test check bench

build:
	go build ./...

test:
	go test ./...

# check is the pre-merge gate: static analysis plus the race detector over the
# packages that run goroutines (the destination-sharded engine, including its
# fault-recovery paths exercised by the chaos suite) or are otherwise
# concurrency-sensitive.
check:
	go vet ./...
	go test -race ./internal/engine ./internal/partition ./internal/apps ./internal/fault

# bench runs the engine gather micro-benchmarks whose edges/s trajectory is
# tracked in BENCH_ENGINE.json.
bench:
	go test -run '^$$' -bench 'BenchmarkEngineGather' -benchmem ./internal/engine
