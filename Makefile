# Developer entry points. The repo needs only the Go toolchain.

.PHONY: build test check bench bench-ingress bench-scaling bench-smoke fuzz-smoke crash-smoke golden-update

build:
	go build ./...

test:
	go test ./...

# check is the pre-merge gate: static analysis, the race detector over the
# packages that run goroutines (the destination-sharded engine, the parallel
# ingress scans, the single-flight placement cache, the multi-tenant job
# service's worker pool, including the fault-recovery paths exercised by the
# chaos suite) or are otherwise concurrency-sensitive (the metrics registry),
# the ingress differential test pinning the parallel partitioners to their
# sequential specs, the batched-BFS differential suite pinning the 64-lane
# packed traversal to 64 scalar runs at -cpu 1,2,4, the evolving-graph
# differentials (amended placements inside their imbalance envelope,
# O(|delta|) fingerprints bit-identical to full rescans, process-stable
# partitioner cache keys), the overload and evolve golden files pinning the
# service control plane and the incremental-recomputation chain
# byte-for-byte, and a short fuzz pass over every decoder/encoder boundary
# plus the packed-traversal and delta property fuzzers.
check:
	go vet ./...
	go test -race ./internal/engine ./internal/partition ./internal/apps ./internal/fault ./internal/trace ./internal/workload ./internal/service ./internal/graph
	go test -race -cpu 1,2,4 -run TestParallelEngineWorkerCountInvariance ./internal/apps
	go test -race -cpu 1,2,4 -run TestClusterBFS ./internal/apps
	go test -run 'TestIngressDifferential|TestCompileBlocksParallelMatchesSequential' ./internal/partition ./internal/engine
	go test -run 'TestIngressAllocs|TestHybridShardedBytesRegression' ./internal/partition
	go test -run 'TestAmendDifferential|TestEvolveFingerprint|TestPartitionerFingerprintStability' ./internal/partition ./internal/workload
	go test -run 'TestGoldenTables/(overload|evolve)' ./internal/exp
	$(MAKE) fuzz-smoke

# fuzz-smoke runs each fuzz target briefly — enough to exercise the seed
# corpus plus a few thousand mutations, cheap enough for every merge. Longer
# campaigns: go test -fuzz FuzzChromeTrace -fuzztime 5m ./internal/trace
FUZZTIME ?= 5s
fuzz-smoke:
	go test -run '^$$' -fuzz FuzzChromeTrace -fuzztime $(FUZZTIME) ./internal/trace
	go test -run '^$$' -fuzz FuzzPrometheus -fuzztime $(FUZZTIME) ./internal/trace
	go test -run '^$$' -fuzz FuzzDecodeCheckpoint -fuzztime $(FUZZTIME) ./internal/engine
	go test -run '^$$' -fuzz FuzzDecodeJournal -fuzztime $(FUZZTIME) ./internal/service
	go test -run '^$$' -fuzz FuzzClusterBFS -fuzztime $(FUZZTIME) ./internal/apps
	go test -run '^$$' -fuzz FuzzDelta -fuzztime $(FUZZTIME) ./internal/graph

# crash-smoke runs the end-to-end crash-restart check: a journaling serve
# process is kill -9'd mid-life and restarted; status URLs, idempotency keys
# and recovery metrics must survive. CI runs it on every merge.
crash-smoke:
	bash scripts/crash_restart_smoke.sh

# golden-update rewrites the experiment golden files after an intentional
# accounting or formatting change; review the testdata diff before committing.
golden-update:
	go test ./internal/exp -run TestGoldenTables -update

# bench runs the engine gather micro-benchmarks whose edges/s trajectory is
# tracked in BENCH_ENGINE.json.
bench:
	go test -run '^$$' -bench 'BenchmarkEngineGather' -benchmem ./internal/engine

# bench-ingress runs the partitioner ingress micro-benchmarks (sequential
# reference vs the sharded picker pipeline) tracked in BENCH_INGRESS.json.
bench-ingress:
	go test -run '^$$' -bench 'BenchmarkIngress' -benchmem ./internal/partition

# bench-scaling runs the full GOMAXPROCS × shard matrix (engine + ingress
# suites at -cpu 1,2,4,8) and appends host- and date-stamped entries with
# edges/s and speedup-vs-1-core to BENCH_ENGINE.json / BENCH_INGRESS.json.
# Pass NOTE="..." to label the entries.
NOTE ?=
bench-scaling:
	go run ./cmd/benchmat -cpus 1,2,4,8 -note '$(NOTE)'

# bench-smoke is the CI guard: one iteration of every matrix benchmark at
# GOMAXPROCS 1 and 4, parsed but not recorded — it fails if any benchmark
# breaks or stops reporting edges/s, without burning CI minutes on timing.
bench-smoke:
	go run ./cmd/benchmat -cpus 1,4 -benchtime 1x -check
