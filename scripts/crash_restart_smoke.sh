#!/usr/bin/env bash
# Crash-restart smoke for the durable control plane: build cmd/serve, run it
# with a write-ahead journal, submit a keyed job over HTTP, kill -9 the
# process, restart it against the same journal, and verify that the old
# status URL still resolves, idempotent resubmission dedups to the old id,
# and /metrics reports the recovery with the degraded gauge at 0. Finishes
# with a SIGTERM to exercise the bounded drain path.
#
# Needs only bash, curl and the Go toolchain. Used by CI's
# crash-restart-smoke job and runnable locally: make crash-smoke
set -euo pipefail

ADDR=${ADDR:-127.0.0.1:18080}
DIR=$(mktemp -d)
PID=""
cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT
JOURNAL="$DIR/jobs.journal"
BASE="http://$ADDR"

say() { echo "crash-smoke: $*"; }
die() { say "FAIL: $*"; exit 1; }

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  die "server on $ADDR never became healthy"
}

job_state() {
  curl -fsS "$BASE/jobs/$1" | grep -o '"state":"[a-z]*"' | cut -d'"' -f4
}

go build -o "$DIR/serve" ./cmd/serve

say "starting server with journal $JOURNAL"
"$DIR/serve" -addr "$ADDR" -scale 512 -journal "$JOURNAL" -drain-timeout 5 &
PID=$!
wait_healthy

ID=$(curl -fsS -X POST "$BASE/jobs" -H 'Idempotency-Key: smoke-1' \
  -d '{"tenant":"gold","app":"pagerank","graph":"social_network"}' | tr -dc 0-9)
[ -n "$ID" ] || die "submit returned no id"
say "submitted job $ID"

for _ in $(seq 1 200); do
  [ "$(job_state "$ID")" = done ] && break
  sleep 0.05
done
[ "$(job_state "$ID")" = done ] || die "job $ID never completed"
say "job $ID done; killing server with SIGKILL"

kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

say "restarting against the same journal"
"$DIR/serve" -addr "$ADDR" -scale 512 -journal "$JOURNAL" -drain-timeout 5 &
PID=$!
wait_healthy

STATE=$(job_state "$ID")
[ "$STATE" = done ] || die "recovered job $ID is '$STATE', want done"
say "status URL /jobs/$ID survived the crash (state done)"

ID2=$(curl -fsS -X POST "$BASE/jobs" -H 'Idempotency-Key: smoke-1' \
  -d '{"tenant":"gold","app":"pagerank","graph":"social_network"}' | tr -dc 0-9)
[ "$ID2" = "$ID" ] || die "idempotent resubmit returned id $ID2, want $ID"
say "idempotent resubmission deduped to job $ID"

METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -q '^proxygraph_jobs_recovered_done 1' \
  || die "metrics missing proxygraph_jobs_recovered_done 1"
echo "$METRICS" | grep -q '^proxygraph_degraded 0' \
  || die "metrics missing proxygraph_degraded 0"
say "recovery metrics present"

say "graceful shutdown via SIGTERM"
kill -TERM "$PID"
for _ in $(seq 1 100); do
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$PID" 2>/dev/null; then
  die "server did not exit within 10s of SIGTERM"
fi
wait "$PID" 2>/dev/null || die "server exited non-zero on SIGTERM"
PID=""

say "PASS"
