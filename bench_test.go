package proxygraph

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the DESIGN.md ablations. Each benchmark regenerates its
// experiment at the default scale (1/64 of Table II) and prints the
// resulting table once, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's entire evaluation section. cmd/bench offers the
// same experiments with a -scale flag for full-size runs.

import (
	"fmt"
	"sync"
	"testing"

	"proxygraph/internal/exp"
	"proxygraph/internal/metrics"
)

// benchLab is shared across benchmarks so graphs, proxies and CCR pools are
// generated once, as in the paper's one-time offline profiling.
var benchLab = sync.OnceValue(func() *exp.Lab {
	return exp.NewLab(exp.DefaultConfig())
})

// printOnce guards each experiment's table output.
var printOnce sync.Map

func emit(b *testing.B, key string, tables ...*metrics.Table) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(key, true); loaded {
		return
	}
	for _, t := range tables {
		fmt.Printf("\n%s\n", t)
	}
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exp.TableI()
		emit(b, "table1", t)
	}
}

func BenchmarkTableII(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		t, err := lab.TableII()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "table2", t)
	}
}

func BenchmarkFig2(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		t, err := lab.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "fig2", t)
	}
}

func BenchmarkFig6(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		t, err := lab.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "fig6", t)
	}
}

func BenchmarkFig8a(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		t, err := lab.Fig8a()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "fig8a", t)
	}
}

func BenchmarkFig8b(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		t, err := lab.Fig8b()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "fig8b", t)
	}
}

func BenchmarkFig9(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		tables, err := lab.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		summary, err := lab.Fig9Summary()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "fig9", append(tables, summary)...)
	}
}

func BenchmarkFig10a(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		t, err := lab.Fig10a()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "fig10a", t)
	}
}

func BenchmarkFig10b(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		t, err := lab.Fig10b()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "fig10b", t)
	}
}

func BenchmarkFig11(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		t, err := lab.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "fig11", t)
	}
}

func BenchmarkAblationHybridThreshold(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		t, err := lab.AblationHybridThreshold()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "abl-hybrid", t)
	}
}

func BenchmarkAblationGingerGamma(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		t, err := lab.AblationGingerGamma()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "abl-ginger", t)
	}
}

func BenchmarkAblationProxySet(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		t, err := lab.AblationProxySet()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "abl-proxyset", t)
	}
}

func BenchmarkAblationScaleInvariance(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		t, err := lab.AblationScaleInvariance()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "abl-scale", t)
	}
}

func BenchmarkReplicationStudy(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		t, err := lab.ReplicationStudy()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "replication", t)
	}
}

func BenchmarkIngressStudy(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		t, err := lab.IngressStudy()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "ingress", t)
	}
}

func BenchmarkAblationSubsample(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		t, err := lab.AblationSubsample()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "abl-subsample", t)
	}
}

// BenchmarkEndToEnd measures the full proxy-guided pipeline (profile once,
// partition, execute) for each application on the Case 2 cluster — the
// library's primary user-facing path.
func BenchmarkEndToEnd(b *testing.B) {
	cl, err := NewCluster(LocalXeon("xeon-4c", 4, 2.5), LocalXeon("xeon-12c", 12, 2.5))
	if err != nil {
		b.Fatal(err)
	}
	profiler, err := NewProxyProfiler(256, 1)
	if err != nil {
		b.Fatal(err)
	}
	pool, err := BuildPool(cl, Apps(), profiler)
	if err != nil {
		b.Fatal(err)
	}
	g, err := Generate(Spec{Name: "bench", Vertices: 50000, Edges: 600000, Kind: KindPowerLaw}, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, app := range Apps() {
		b.Run(app.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := RunPooled(app, g, cl, NewHybrid(), pool, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.SimSeconds, "sim-s/op")
			}
		})
	}
}

func BenchmarkDynamicStudy(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		t, err := lab.DynamicStudy()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "dynamic", t)
	}
}

func BenchmarkAmortizationStudy(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		t, err := lab.AmortizationStudy()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "amortization", t)
	}
}

func BenchmarkFrequencySweep(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		t, err := lab.FrequencySweep()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "freqsweep", t)
	}
}

func BenchmarkRecoveryStudy(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		t, err := lab.RecoveryStudy()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "recovery", t)
	}
}

func BenchmarkClusterBFSStudy(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		t, err := lab.ClusterBFSStudy()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "clusterbfs", t)
	}
}
